"""Canonical request/response encoding for the serving layer.

Two properties drive this module:

* **Determinism** — a served ``analyze`` response must be *byte-identical*
  to what :func:`repro.api.analyze` would produce for the same inputs, no
  matter which worker thread computed it or whether the response was
  shared through the dedup path.  Everything is therefore rendered
  through one canonical JSON encoder (sorted keys, fixed separators,
  ``repr``-exact floats, NaN rejected).
* **Self-containment** — requests carry the *system itself* (the
  ``save_system`` payload), a built-in suite name, or a server-local
  path.  A request is a pure value: its canonical digest identifies the
  computation completely, which is what the batcher dedups on.
"""

import hashlib
import json
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.analysis import MCAnalysisResult, TransitionInfo
from repro.core.problem import DesignPoint
from repro.dse.request import ExploreRequest, IslandTopology, TOPOLOGY_KINDS
from repro.dse.results import (
    ExplorationResult,
    ExplorationStatistics,
    ParetoPoint,
)
from repro.errors import ReproError
from repro.model.serialization import (
    FORMAT_VERSION,
    SystemBundle,
    application_set_from_dict,
    application_set_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    mapping_from_dict,
    mapping_to_dict,
)
from repro.sim.montecarlo import MonteCarloResult

__all__ = [
    "canonical_json",
    "canonical_bytes",
    "request_digest",
    "bundle_to_payload",
    "bundle_from_payload",
    "resolve_system",
    "canonical_system",
    "parse_analyze_request",
    "parse_simulate_request",
    "parse_explore_request",
    "parse_shard_request",
    "explore_request_from_params",
    "analysis_result_to_dict",
    "montecarlo_result_to_dict",
    "exploration_result_to_dict",
    "exploration_result_from_dict",
]


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def canonical_bytes(obj: Any) -> bytes:
    """:func:`canonical_json` as UTF-8 bytes (HTTP bodies, digests)."""
    return canonical_json(obj).encode("utf-8")


def request_digest(endpoint: str, params: Dict[str, Any]) -> str:
    """The dedup key of one request: sha256 over its canonical form.

    Equal digests mean the canonicalized requests are identical values,
    so the computations are interchangeable and one response body can be
    shared verbatim.  (Cross-request ``sched()`` sharing between *non*-
    identical requests happens one layer down, in the process-wide
    :class:`~repro.core.fastpath.ScheduleCache` keyed by
    :meth:`~repro.sched.jobs.JobSet.fingerprint`.)
    """
    payload = {"endpoint": endpoint, "params": params}
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


# ---------------------------------------------------------------------------
# System specs
# ---------------------------------------------------------------------------


def bundle_to_payload(bundle: SystemBundle) -> Dict[str, Any]:
    """A :class:`SystemBundle` as the (inline) ``save_system`` payload."""
    payload: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "applications": application_set_to_dict(bundle.applications),
        "architecture": architecture_to_dict(bundle.architecture),
    }
    if bundle.mapping is not None:
        payload["mapping"] = mapping_to_dict(bundle.mapping)
    if bundle.plan is not None:
        payload["hardening_plan"] = bundle.plan.to_dict()
    return payload


def bundle_from_payload(payload: Dict[str, Any]) -> SystemBundle:
    """Inverse of :func:`bundle_to_payload` (the ``save_system`` format)."""
    from repro.hardening.spec import HardeningPlan

    if not isinstance(payload, dict):
        raise ReproError("inline system must be a JSON object")
    for field in ("applications", "architecture"):
        if field not in payload:
            raise ReproError(f"inline system lacks {field!r}")
    applications = application_set_from_dict(payload["applications"])
    architecture = architecture_from_dict(payload["architecture"])
    mapping = (
        mapping_from_dict(payload["mapping"]) if "mapping" in payload else None
    )
    plan = (
        HardeningPlan.from_dict(payload["hardening_plan"])
        if "hardening_plan" in payload
        else None
    )
    return SystemBundle(applications, architecture, mapping, plan)


def resolve_system(
    spec: Union[str, Dict[str, Any]], allow_paths: bool = False
) -> SystemBundle:
    """A bundle from a request's ``system`` field.

    Accepts an inline ``save_system`` payload (the self-contained form
    clients should prefer) or a built-in suite name.  Server-local
    *paths* are an opt-in (``allow_paths=True``, the server's
    ``--allow-local-paths`` flag): letting any client that can reach the
    socket open arbitrary server-side files — and probe their existence
    through error messages — is only acceptable when client and server
    trust each other and share a filesystem.
    """
    from repro.api import load

    if isinstance(spec, dict):
        return bundle_from_payload(spec)
    if isinstance(spec, str):
        from repro.suites import benchmark_names

        if allow_paths or spec in benchmark_names():
            return load(spec)
        raise ReproError(
            f"unknown suite {spec!r}; known suites: "
            f"{', '.join(sorted(benchmark_names()))}. Server-local file "
            f"paths are disabled (start the server with "
            f"--allow-local-paths to accept them)"
        )
    raise ReproError(
        f"system must be an object, suite name, or path, got "
        f"{type(spec).__name__}"
    )


def canonical_system(
    spec: Union[str, Dict[str, Any]], allow_paths: bool = False
) -> Dict[str, Any]:
    """Resolve a system spec to its inline payload form.

    Requests are canonicalized *before* dedup keying, so ``"cruise"``
    and the equivalent inline bundle coalesce — and an explore job stored
    for resume-on-restart no longer depends on files that may move.
    """
    return bundle_to_payload(resolve_system(spec, allow_paths=allow_paths))


# ---------------------------------------------------------------------------
# Request parsing
# ---------------------------------------------------------------------------

_ANALYZE_FIELDS = {
    "system", "method", "backend", "granularity", "dropped", "policy",
    "bus_contention", "deadline_seconds",
}
_SIMULATE_FIELDS = {
    "system", "profiles", "seed", "dropped", "policy", "max_faults",
    "worst_bias", "deadline_seconds",
}
_EXPLORE_FIELDS = {
    "system", "generations", "population", "offspring_size", "archive_size",
    "seed", "workers", "checkpoint_every", "eval_retries", "eval_budget",
    "deadline_seconds", "idempotency_key", "islands", "migration_every",
    "migrants", "topology", "backend",
}
_SHARD_FIELDS = _EXPLORE_FIELDS | {"op", "run_id", "island", "stop"}

#: Idempotency keys become marker-file names, so they must be
#: filesystem-safe: short and limited to [A-Za-z0-9._-].
_IDEMPOTENCY_KEY_MAX = 128
_IDEMPOTENCY_KEY_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _idempotency_key_field(payload: Dict[str, Any]) -> Optional[str]:
    value = payload.get("idempotency_key")
    if value is None:
        return None
    if (
        not isinstance(value, str)
        or not value
        or len(value) > _IDEMPOTENCY_KEY_MAX
        or not set(value) <= _IDEMPOTENCY_KEY_CHARS
        or value.startswith(".")
    ):
        raise ReproError(
            "idempotency_key must be 1-128 characters of [A-Za-z0-9._-] "
            "and must not start with '.'"
        )
    return value


def _reject_unknown(payload: Dict[str, Any], allowed: set, endpoint: str):
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ReproError(
            f"unknown field(s) for {endpoint}: {', '.join(unknown)}; "
            f"accepted: {', '.join(sorted(allowed))}"
        )


def _require_system(payload: Dict[str, Any]) -> None:
    if "system" not in payload:
        raise ReproError("request lacks the required 'system' field")


def _int_field(payload, name, default, minimum):
    value = payload.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ReproError(f"{name} must be an integer >= {minimum}")
    return value


def _float_field(payload, name, default):
    value = payload.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ReproError(f"{name} must be a number")
    return float(value)


def _choice_field(payload, name, default, choices):
    value = payload.get(name, default)
    if value is not None and value not in choices:
        raise ReproError(
            f"{name} must be one of {', '.join(map(str, sorted(c for c in choices if c)))}"
        )
    return value


def _dropped_field(payload) -> Tuple[str, ...]:
    dropped = payload.get("dropped", ())
    if isinstance(dropped, str):
        dropped = [n.strip() for n in dropped.split(",")]
    if not isinstance(dropped, (list, tuple)) or not all(
        isinstance(n, str) for n in dropped
    ):
        raise ReproError("dropped must be a list of names or one comma string")
    return tuple(n for n in dropped if n)


def _deadline_field(payload) -> Optional[float]:
    deadline = _float_field(payload, "deadline_seconds", None)
    if deadline is not None and deadline <= 0:
        raise ReproError("deadline_seconds must be positive")
    return deadline


def parse_analyze_request(
    payload: Dict[str, Any], allow_paths: bool = False
) -> Dict[str, Any]:
    """Validate and normalize a ``/v1/analyze`` body.

    Returns a plain dict of canonical parameters (system inlined), ready
    for :func:`request_digest` and for the worker to execute.
    """
    if not isinstance(payload, dict):
        raise ReproError("request body must be a JSON object")
    _reject_unknown(payload, _ANALYZE_FIELDS, "/v1/analyze")
    _require_system(payload)
    return {
        "system": canonical_system(payload["system"], allow_paths=allow_paths),
        "method": _choice_field(
            payload, "method", "proposed", ("proposed", "naive", "adhoc")
        ),
        "backend": _choice_field(
            payload, "backend", None, (None, "window", "fast", "holistic")
        ),
        "granularity": _choice_field(
            payload, "granularity", "job", ("job", "task")
        ),
        "dropped": list(_dropped_field(payload)),
        "policy": _choice_field(payload, "policy", "fp", ("fp", "edf")),
        "bus_contention": bool(payload.get("bus_contention", False)),
        "deadline_seconds": _deadline_field(payload),
    }


def parse_simulate_request(
    payload: Dict[str, Any], allow_paths: bool = False
) -> Dict[str, Any]:
    """Validate and normalize a ``/v1/simulate`` body."""
    if not isinstance(payload, dict):
        raise ReproError("request body must be a JSON object")
    _reject_unknown(payload, _SIMULATE_FIELDS, "/v1/simulate")
    _require_system(payload)
    worst_bias = _float_field(payload, "worst_bias", 0.5)
    if not 0.0 <= worst_bias <= 1.0:
        raise ReproError("worst_bias must lie in [0, 1]")
    return {
        "system": canonical_system(payload["system"], allow_paths=allow_paths),
        "profiles": _int_field(payload, "profiles", 500, 1),
        "seed": _int_field(payload, "seed", 0, 0),
        "dropped": list(_dropped_field(payload)),
        "policy": _choice_field(payload, "policy", "fp", ("fp", "edf")),
        "max_faults": _int_field(payload, "max_faults", 3, 0),
        "worst_bias": worst_bias,
        "deadline_seconds": _deadline_field(payload),
    }


def parse_explore_request(
    payload: Dict[str, Any], allow_paths: bool = False
) -> Dict[str, Any]:
    """Validate and normalize a ``/v1/explore`` body (async job).

    The returned params are the request's *canonical* form: the system
    is inlined, ``backend`` defaults to the explicit ``"fast"``, and the
    island topology is normalized through
    :meth:`~repro.dse.request.IslandTopology.normalized` — so every
    spelling of the same exploration (one island with a ring vs. an
    explicit ``none`` topology, ``backend`` omitted vs. ``"fast"``)
    digests identically and coalesces in the dedup layer, exactly like
    analyze payloads do.
    """
    if not isinstance(payload, dict):
        raise ReproError("request body must be a JSON object")
    _reject_unknown(payload, _EXPLORE_FIELDS, "/v1/explore")
    _require_system(payload)
    eval_budget = _float_field(payload, "eval_budget", None)
    if eval_budget is not None and eval_budget <= 0:
        raise ReproError("eval_budget must be positive")
    topology = IslandTopology(
        islands=_int_field(payload, "islands", 1, 1),
        migration_every=_int_field(payload, "migration_every", 10, 1),
        migrants=_int_field(payload, "migrants", 2, 0),
        kind=_choice_field(payload, "topology", "ring", TOPOLOGY_KINDS),
    ).normalized()
    population = _int_field(payload, "population", 32, 2)
    return {
        "system": canonical_system(payload["system"], allow_paths=allow_paths),
        "generations": _int_field(payload, "generations", 25, 0),
        "population": population,
        # The offspring/archive sizes default to the population (the CLI
        # triple), resolved here so omitting them and spelling them out
        # digest identically.
        "offspring_size": _int_field(
            payload, "offspring_size", population, 1
        ),
        "archive_size": _int_field(payload, "archive_size", population, 1),
        "seed": _int_field(payload, "seed", 0, 0),
        "workers": _int_field(payload, "workers", 1, 1),
        "checkpoint_every": _int_field(payload, "checkpoint_every", 2, 1),
        "eval_retries": _int_field(payload, "eval_retries", 1, 0),
        "eval_budget": eval_budget,
        "islands": topology.islands,
        "migration_every": topology.migration_every,
        "migrants": topology.migrants,
        "topology": topology.kind,
        "backend": _choice_field(
            payload, "backend", "fast", (None, "window", "fast", "holistic")
        ) or "fast",
        "deadline_seconds": _deadline_field(payload),
        "idempotency_key": _idempotency_key_field(payload),
    }


def _safe_name(value: Any, label: str) -> str:
    if (
        not isinstance(value, str)
        or not value
        or len(value) > _IDEMPOTENCY_KEY_MAX
        or not set(value) <= _IDEMPOTENCY_KEY_CHARS
        or value.startswith(".")
    ):
        raise ReproError(
            f"{label} must be 1-128 characters of [A-Za-z0-9._-] "
            f"and must not start with '.'"
        )
    return value


def parse_shard_request(
    payload: Dict[str, Any], allow_paths: bool = False
) -> Dict[str, Any]:
    """Validate and normalize a ``/v1/shard`` body (island fleet op).

    A shard is one step of a client-coordinated island run: an ``epoch``
    (advance one island to a stop generation), a ``migrate`` barrier, or
    the final ``merge``.  All shards of a run share a filesystem-safe
    ``run_id`` that scopes their state under the server's job directory.
    """
    if not isinstance(payload, dict):
        raise ReproError("request body must be a JSON object")
    _reject_unknown(payload, _SHARD_FIELDS, "/v1/shard")
    base = parse_explore_request(
        {k: v for k, v in payload.items() if k in _EXPLORE_FIELDS},
        allow_paths=allow_paths,
    )
    op = _choice_field(payload, "op", None, ("epoch", "migrate", "merge"))
    if op is None:
        raise ReproError("shard requests need op: epoch, migrate, or merge")
    params = dict(base)
    params["op"] = op
    params["run_id"] = _safe_name(payload.get("run_id"), "run_id")
    params["island"] = None
    params["stop"] = None
    if op == "epoch":
        if "island" not in payload:
            raise ReproError("epoch shards need an island index")
        island = _int_field(payload, "island", 0, 0)
        if island >= base["islands"]:
            raise ReproError(
                f"island {island} out of range for {base['islands']} islands"
            )
        params["island"] = island
    if op in ("epoch", "migrate"):
        if "stop" not in payload:
            raise ReproError(f"{op} shards need a stop generation")
        stop = _int_field(payload, "stop", 0, 0 if op == "epoch" else 1)
        if stop > base["generations"] or (
            op == "migrate" and stop >= base["generations"]
        ):
            raise ReproError(
                f"stop generation {stop} exceeds the run's "
                f"{base['generations']} generations"
            )
        params["stop"] = stop
    return params


def explore_request_from_params(params: Dict[str, Any]) -> ExploreRequest:
    """The typed :class:`ExploreRequest` behind canonical job params.

    Accepts both the canonical layout and legacy pre-island job records
    (which simply lack the island/backend keys), so durable jobs written
    by older servers still resume.
    """
    return ExploreRequest.from_options(
        params["system"],
        backend=params.get("backend", "fast"),
        islands=params.get("islands", 1),
        migration_every=params.get("migration_every", 10),
        migrants=params.get("migrants", 2),
        topology=params.get("topology", "ring"),
        generations=params.get("generations", 25),
        population=params.get("population", 32),
        offspring_size=params.get("offspring_size"),
        archive_size=params.get("archive_size"),
        seed=params.get("seed", 0),
        workers=params.get("workers", 1),
        checkpoint_every=params.get("checkpoint_every", 2),
        eval_retries=params.get("eval_retries", 1),
        eval_budget=params.get("eval_budget"),
    )


# ---------------------------------------------------------------------------
# Result encoding
# ---------------------------------------------------------------------------


def _transition_to_dict(transition: TransitionInfo) -> Dict[str, Any]:
    return {
        "trigger_primary": transition.trigger_primary,
        "trigger_kind": transition.trigger_kind.value,
        "instance": transition.instance,
        "min_start": transition.min_start,
        "max_finish": transition.max_finish,
        "wcrt": dict(transition.wcrt),
    }


def analysis_result_to_dict(result: MCAnalysisResult) -> Dict[str, Any]:
    """A :class:`MCAnalysisResult` as a JSON-friendly dict.

    Transition order is preserved as a list (it carries the fold order of
    Algorithm 1); everything keyed by name sorts deterministically
    through the canonical encoder.
    """
    return {
        "kind": "analysis",
        "schedulable": result.schedulable,
        "granularity": result.granularity,
        "transitions_analyzed": result.transitions_analyzed,
        "transitions_pruned": result.transitions_pruned,
        "verdicts": {
            name: {
                "wcrt": verdict.wcrt,
                "normal_wcrt": verdict.normal_wcrt,
                "deadline": verdict.deadline,
                "dropped": verdict.dropped,
                "meets_deadline": verdict.meets_deadline,
                "worst_transition": verdict.worst_transition,
            }
            for name, verdict in result.verdicts.items()
        },
        "transitions": [_transition_to_dict(t) for t in result.transitions],
        "task_completion": dict(result.task_completion),
    }


def montecarlo_result_to_dict(result: MonteCarloResult) -> Dict[str, Any]:
    """A :class:`MonteCarloResult` as a JSON-friendly summary.

    Raw per-profile samples stay on the server (they can be tens of
    thousands of floats); the summary carries the quantiles the CLI
    prints.
    """
    graphs = sorted(result.worst_response)
    return {
        "kind": "simulation",
        "profiles": result.profiles,
        "critical_runs": result.critical_runs,
        "runs_with_drops": result.runs_with_drops,
        "deadline_miss_runs": dict(result.deadline_miss_runs),
        "worst_response": dict(result.worst_response),
        "p99_response": {g: result.percentile(g, 0.99) for g in graphs},
        "mean_response": {g: result.mean_response(g) for g in graphs},
    }


def exploration_result_to_dict(result: ExplorationResult) -> Dict[str, Any]:
    """An :class:`ExplorationResult` as a JSON-friendly dict."""
    return {
        "kind": "exploration",
        "generations_run": result.generations_run,
        "statistics": result.statistics.to_dict(),
        "pareto": [
            {
                "power": point.power,
                "service": point.service,
                "dropped": list(point.dropped),
                "design": point.design.to_dict(),
            }
            for point in result.pareto
        ],
        "history": [list(entry) for entry in result.history],
        "best_by_drop_set": [
            {
                "power": point.power,
                "service": point.service,
                "design": point.design.to_dict(),
            }
            for _key, point in sorted(result.best_by_drop_set.items())
        ],
    }


def _pareto_point_from_dict(entry: Dict[str, Any]) -> ParetoPoint:
    return ParetoPoint(
        power=entry["power"],
        service=entry["service"],
        design=DesignPoint.from_dict(entry["design"]),
    )


def exploration_result_from_dict(payload: Dict[str, Any]) -> ExplorationResult:
    """Inverse of :func:`exploration_result_to_dict`.

    Island workers persist their results through this round-trip, and
    the fleet coordinator rebuilds merged results from job records —
    JSON round-trips Python floats exactly, so a result that travelled
    through a file or the wire merges byte-identically.
    """
    best: Dict[tuple, ParetoPoint] = {}
    for entry in payload.get("best_by_drop_set", ()):
        point = _pareto_point_from_dict(entry)
        best[point.dropped] = point
    return ExplorationResult(
        pareto=[
            _pareto_point_from_dict(entry)
            for entry in payload.get("pareto", ())
        ],
        statistics=ExplorationStatistics.from_dict(
            payload.get("statistics", {})
        ),
        history=[
            (entry[0], entry[1], entry[2])
            for entry in payload.get("history", ())
        ],
        generations_run=payload.get("generations_run", 0),
        best_by_drop_set=best,
    )
