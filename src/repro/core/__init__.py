"""The paper's primary contribution: mixed-criticality WCRT analysis
(Algorithm 1), its baselines, and design-point evaluation.

* :class:`MixedCriticalityAnalysis` — the proposed analysis: enumerates
  every possible normal-to-critical state transition and re-runs the
  schedulability back-end with state-adjusted execution-time bounds;
* :class:`NaiveAnalysis` — the ``Naive`` baseline (§3, §5.1): droppable
  tasks statically get a ``[0, wcet]`` range, re-executable tasks their
  Eq. (1) worst case, in a single analysis run;
* :class:`AdhocAnalysis` — the ``Adhoc`` baseline (§5.1): a deterministic
  worst-trace simulation where the system is critical from time zero;
* :class:`PowerModel` — expected power ``sum(stat_p + dyn_p * u_p)``;
* :class:`Evaluator` — feasibility and objectives of a design point;
* :class:`GuardedEvaluator` — exception/budget isolation around an
  evaluator, with degraded-backend fallback and a quarantine log.
"""

from repro.core.problem import DesignPoint, Problem
from repro.core.power import PowerModel
from repro.core.analysis import (
    GraphVerdict,
    MCAnalysisResult,
    MixedCriticalityAnalysis,
    TransitionInfo,
)
from repro.core.naive import NaiveAnalysis
from repro.core.adhoc import AdhocAnalysis
from repro.core.factory import (
    ANALYSIS_METHODS,
    SCHED_BACKENDS,
    AnalysisMethod,
    make_analysis,
    make_backend,
    make_dse_evaluator,
)
from repro.core.fastpath import (
    FastPathConfig,
    ScheduleCache,
    TransitionPruner,
    shared_cache,
)
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.guard import GuardConfig, GuardedEvaluator, QuarantineLog
from repro.core.sensitivity import (
    deadline_margins,
    scale_execution_times,
    wcet_scaling_margin,
)

__all__ = [
    "Problem",
    "DesignPoint",
    "PowerModel",
    "MixedCriticalityAnalysis",
    "MCAnalysisResult",
    "GraphVerdict",
    "TransitionInfo",
    "NaiveAnalysis",
    "AdhocAnalysis",
    "AnalysisMethod",
    "ANALYSIS_METHODS",
    "SCHED_BACKENDS",
    "make_analysis",
    "make_dse_evaluator",
    "make_backend",
    "FastPathConfig",
    "ScheduleCache",
    "shared_cache",
    "TransitionPruner",
    "Evaluator",
    "EvaluationResult",
    "GuardConfig",
    "GuardedEvaluator",
    "QuarantineLog",
    "scale_execution_times",
    "wcet_scaling_margin",
    "deadline_margins",
]
