"""The evaluation guard: exception isolation for long-running DSE.

The paper's experimental setup runs the GA for 5,000 generations; at that
scale a single pathological design point that blows up the analysis (a
diverging fixed-point sweep, a degenerate hardening transform, a numeric
edge case) must not kill the whole exploration.  :class:`GuardedEvaluator`
wraps an :class:`~repro.core.evaluator.Evaluator` so that *any* exception
is converted into an infeasible :class:`EvaluationResult` carrying the
exception as a violation, with

* a **bounded retry** for transient failures,
* a **wall-clock soft budget** per evaluation,
* **graceful degradation**: when the configured backend raises or blows
  its budget, the design is re-evaluated once with the cheap
  :class:`~repro.sched.fast.FastWindowAnalysisBackend` before giving up,
  and the substitution is recorded in ``EvaluationResult.fallback``;
* a **quarantine log**: each guarded failure appends one JSON line
  (chromosome/context, design JSON, traceback) so poison points stay
  reproducible outside the run.  The first line of a fresh log is a
  header carrying the problem serialization, which makes the file
  self-contained: ``repro verify --replay`` re-evaluates every
  quarantined design from the JSONL alone.

Guard activity is surfaced through ``eval.guard.*`` counters and the
``evaluation-failed`` / ``backend-fallback`` events.
"""

import json
import threading
import time
import traceback
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Optional

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.problem import DesignPoint, Problem
from repro.errors import EvaluationGuardError
from repro.obs import events as obs_events
from repro.obs.events import BackendFellBack, EvaluationFailed
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import span as trace_span

_LOG = get_logger("guard")

#: ``EvaluationResult.fallback`` marker of degraded-backend results.
FALLBACK_BACKEND = "fast-window"


@dataclass(frozen=True)
class GuardConfig:
    """Tuning knobs of the evaluation guard."""

    #: Extra primary-backend attempts after a raising evaluation
    #: (transient states; deterministic failures fail every attempt).
    retries: int = 1
    #: Per-evaluation wall-clock soft budget in seconds.  A successful but
    #: over-budget evaluation triggers the fallback backend; ``None``
    #: disables the budget (the default — a time-based cutoff makes runs
    #: timing-dependent, so it is opt-in).
    soft_budget_seconds: Optional[float] = None
    #: Re-evaluate once with the cheap fast-window backend when the
    #: primary backend raises or exceeds its budget.
    fallback: bool = True

    def __post_init__(self):
        if self.retries < 0:
            raise EvaluationGuardError("guard retries must be >= 0")
        if self.soft_budget_seconds is not None and self.soft_budget_seconds <= 0:
            raise EvaluationGuardError("guard soft budget must be positive")


class QuarantineLog:
    """Append-only JSONL log of poison design points.

    The file is opened lazily on the first record, so a fully healthy run
    leaves no file behind.  Write failures *during* a run disable the log
    with a warning instead of killing the exploration (that would defeat
    the guard); only an uncreatable parent directory raises.

    When a header supplier is installed (see :meth:`set_header`), a fresh
    log starts with one header line before the first record; appending to
    an existing non-empty file skips the header (it is already there, or
    the file predates the header format).
    """

    def __init__(self, path):
        self._path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        self._disabled = False
        self._header_supplier = None
        self.records_written = 0
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise EvaluationGuardError(
                f"cannot create quarantine directory {self._path.parent}: {error}"
            ) from error

    def set_header(self, supplier) -> None:
        """Install a ``() -> dict`` called once if a fresh log is started.

        Lazy so healthy runs never pay for serializing the header (the
        problem serialization is not small).
        """
        with self._lock:
            self._header_supplier = supplier

    @property
    def path(self) -> Path:
        """Where the JSONL records go."""
        return self._path

    @property
    def active(self) -> bool:
        """Whether records are still being accepted."""
        return not self._disabled

    def record(self, payload: dict) -> None:
        """Append one JSON line (thread-safe; never raises)."""
        with self._lock:
            if self._disabled:
                return
            try:
                if self._handle is None:
                    fresh = (
                        not self._path.exists()
                        or self._path.stat().st_size == 0
                    )
                    self._handle = open(self._path, "a")
                    if fresh and self._header_supplier is not None:
                        self._handle.write(
                            json.dumps(self._header_supplier(), sort_keys=True)
                            + "\n"
                        )
                self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
                self._handle.flush()
                self.records_written += 1
            except (OSError, TypeError, ValueError) as error:
                self._disabled = True
                _LOG.warning(
                    "quarantine log disabled %s",
                    kv(path=str(self._path), error=str(error)),
                )

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False


class GuardedEvaluator:
    """Wraps an evaluator so evaluation failures cannot abort a run.

    Drop-in for :class:`~repro.core.evaluator.Evaluator` on the
    :meth:`evaluate` call; the extra ``context`` argument carries the
    genotype (anything with a ``to_dict``) into the quarantine record.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        config: Optional[GuardConfig] = None,
        quarantine: Optional[QuarantineLog] = None,
    ):
        self._evaluator = evaluator
        self._config = config or GuardConfig()
        self._quarantine = quarantine
        self._fallback_evaluator: Optional[Evaluator] = None
        self._fallback_lock = threading.Lock()
        if quarantine is not None:
            quarantine.set_header(self._quarantine_header)

    def _quarantine_header(self) -> dict:
        """The self-describing first line of a fresh quarantine log."""
        from repro.model.serialization import (
            application_set_to_dict,
            architecture_to_dict,
        )
        from repro.verify.reproducer import QUARANTINE_HEADER_SCHEMA

        problem = self._evaluator.problem
        return {
            "schema": QUARANTINE_HEADER_SCHEMA,
            "applications": application_set_to_dict(problem.applications),
            "architecture": architecture_to_dict(problem.architecture),
        }

    @property
    def problem(self) -> Problem:
        """The problem instance the wrapped evaluator serves."""
        return self._evaluator.problem

    @property
    def quarantine(self) -> Optional[QuarantineLog]:
        """The attached quarantine log, if any."""
        return self._quarantine

    def evaluate(
        self, design: DesignPoint, context: Any = None
    ) -> EvaluationResult:
        """Evaluate ``design``; never raises (except ``KeyboardInterrupt``)."""
        with trace_span("eval.guarded") as sp:
            result = self._evaluate_impl(design, context)
            sp.set_attributes(
                feasible=result.feasible,
                fallback=result.fallback is not None,
                guarded_failure=result.guard_error is not None,
            )
            return result

    def _evaluate_impl(
        self, design: DesignPoint, context: Any = None
    ) -> EvaluationResult:
        config = self._config
        attempts = 1 + config.retries
        retry_counter = metrics().counter("eval.guard.retries")
        result: Optional[EvaluationResult] = None
        error: Optional[BaseException] = None
        trace: Optional[str] = None
        elapsed = 0.0
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                retry_counter.inc()
            started = time.perf_counter()
            try:
                result = self._evaluator.evaluate(design)
            except Exception as exc:  # noqa: BLE001 — the guard's whole job
                elapsed = time.perf_counter() - started
                error = exc
                trace = traceback.format_exc()
                result = None
                continue
            elapsed = time.perf_counter() - started
            error = None
            break

        budget = config.soft_budget_seconds
        over_budget = (
            result is not None and budget is not None and elapsed > budget
        )
        if result is not None and not over_budget:
            return result

        registry = metrics()
        if over_budget:
            registry.counter("eval.guard.budget_exceeded").inc()
            _LOG.warning(
                "evaluation exceeded soft budget %s",
                kv(budget=budget, seconds=round(elapsed, 3)),
            )

        fallback_result: Optional[EvaluationResult] = None
        if config.fallback:
            try:
                fallback_result = self._fallback().evaluate(design)
            except Exception as exc:  # noqa: BLE001
                _LOG.warning(
                    "fallback evaluation failed too %s",
                    kv(error=f"{type(exc).__name__}: {exc}"),
                )

        if fallback_result is not None:
            registry.counter("eval.guard.fallbacks").inc()
            fallback_result = replace(
                fallback_result, fallback=FALLBACK_BACKEND
            )
            bus = obs_events.bus()
            if bus.wants(BackendFellBack):
                bus.publish(
                    BackendFellBack(
                        reason="error" if error is not None else "budget",
                        error_type=(
                            type(error).__name__ if error is not None else None
                        ),
                        seconds=elapsed,
                    )
                )
            if error is not None:
                self._note_failure(
                    error,
                    trace,
                    design=design,
                    context=context,
                    stage="evaluate",
                    attempts=attempts,
                    fallback_used=True,
                )
            return fallback_result

        if error is None:
            # Over budget but the primary result exists and no fallback
            # came through: the slow result is still the best available.
            return result
        return self.failure_result(
            error,
            design=design,
            context=context,
            stage="evaluate",
            traceback_text=trace,
            attempts=attempts,
        )

    def failure_result(
        self,
        error: BaseException,
        design: Optional[DesignPoint] = None,
        context: Any = None,
        stage: str = "evaluate",
        traceback_text: Optional[str] = None,
        attempts: int = 1,
    ) -> EvaluationResult:
        """Convert an exception into an infeasible result (and quarantine it).

        Public so callers owning pipeline stages the guard cannot see
        (e.g. chromosome decode) get the same conversion and telemetry.
        """
        if traceback_text is None:
            traceback_text = "".join(
                traceback.format_exception(
                    type(error), error, error.__traceback__
                )
            )
        self._note_failure(
            error,
            traceback_text,
            design=design,
            context=context,
            stage=stage,
            attempts=attempts,
            fallback_used=False,
        )
        message = f"{type(error).__name__}: {error}"
        return EvaluationResult(
            design=design,
            feasible=False,
            violations=[f"guard[{stage}]: {message}"],
            guard_error=message,
        )

    def _fallback(self) -> Evaluator:
        """The lazily built degraded evaluator (fast back-end defaults)."""
        with self._fallback_lock:
            if self._fallback_evaluator is None:
                self._fallback_evaluator = Evaluator(self._evaluator.problem)
            return self._fallback_evaluator

    def _note_failure(
        self,
        error: BaseException,
        traceback_text: Optional[str],
        design: Optional[DesignPoint],
        context: Any,
        stage: str,
        attempts: int,
        fallback_used: bool,
    ) -> None:
        metrics().counter("eval.guard.failures").inc()
        quarantined = False
        if self._quarantine is not None and self._quarantine.active:
            self._quarantine.record(
                {
                    "stage": stage,
                    "error_type": type(error).__name__,
                    "error": str(error),
                    "traceback": traceback_text,
                    "attempts": attempts,
                    "fallback_used": fallback_used,
                    "design": design.to_dict() if design is not None else None,
                    "context": _context_payload(context),
                }
            )
            quarantined = self._quarantine.active
            if quarantined:
                metrics().counter("eval.guard.quarantined").inc()
        bus = obs_events.bus()
        if bus.wants(EvaluationFailed):
            bus.publish(
                EvaluationFailed(
                    stage=stage,
                    error_type=type(error).__name__,
                    error=str(error),
                    attempts=attempts,
                    fallback_used=fallback_used,
                    quarantined=quarantined,
                )
            )
        _LOG.warning(
            "evaluation failed %s",
            kv(
                stage=stage,
                error=f"{type(error).__name__}: {error}",
                attempts=attempts,
                fallback=fallback_used,
                quarantined=quarantined,
            ),
        )


def _context_payload(context: Any) -> Any:
    """JSON-friendly form of the quarantine context (genotype, key, ...)."""
    if context is None:
        return None
    to_dict = getattr(context, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    try:
        json.dumps(context)
    except (TypeError, ValueError):
        return repr(context)
    return context
