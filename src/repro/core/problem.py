"""Problem and design-point containers (paper §2.3).

Given the architecture ``A`` and applications ``T``, a *design point*
fixes everything the optimization decides: the allocated processors, the
hardening plan (which yields ``T'``), the task-to-processor mapping over
``T'``, and the dropped application set ``T_d``.
"""

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.errors import ModelError
from repro.hardening.spec import HardeningPlan
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.sched.comm import CommModel


@dataclass(frozen=True)
class Problem:
    """An optimization problem instance: applications plus platform.

    ``comm`` customises the channel-latency regime; when ``None`` the
    uncontended latency model of the platform interconnect is used.
    """

    applications: ApplicationSet
    architecture: Architecture
    comm: Optional[CommModel] = None

    def comm_model(self) -> CommModel:
        """The effective communication model.

        Defaults to whatever the architecture's interconnect selects:
        the plain flat :class:`CommModel` for legacy systems, or the
        unbound contention backend named by ``comm_backend`` (bound at
        unroll time, see :mod:`repro.comm`).
        """
        if self.comm is not None:
            return self.comm
        from repro.comm import default_comm

        return default_comm(self.architecture)


@dataclass(frozen=True)
class DesignPoint:
    """One candidate solution of the design space.

    Attributes
    ----------
    allocation:
        Names of the processors switched on.
    dropped:
        The dropped application set ``T_d``: droppable graphs that the
        scheduler detaches when the system enters the critical state.
        Droppable graphs *not* listed here stay alive in every mode.
    plan:
        Per-task hardening decisions, producing ``T' = harden(T, plan)``.
    mapping:
        Task-to-processor mapping over the tasks of ``T'`` (including
        replicas and voters).
    """

    allocation: FrozenSet[str]
    dropped: FrozenSet[str]
    plan: HardeningPlan
    mapping: Mapping

    def __post_init__(self):
        if not self.allocation:
            raise ModelError("design point must allocate at least one processor")

    def without_dropping(self) -> "DesignPoint":
        """The same design with task dropping disabled (``T_d`` empty).

        Used by the §5.2 experiment that measures how many explored
        solutions are feasible only thanks to task dropping.
        """
        if not self.dropped:
            return self
        return DesignPoint(
            allocation=self.allocation,
            dropped=frozenset(),
            plan=self.plan,
            mapping=self.mapping,
        )

    def to_dict(self) -> dict:
        """Serialize to a JSON-friendly dictionary."""
        return {
            "allocation": sorted(self.allocation),
            "dropped": sorted(self.dropped),
            "plan": self.plan.to_dict(),
            "mapping": self.mapping.as_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "DesignPoint":
        """Deserialize from :meth:`to_dict` output."""
        return DesignPoint(
            allocation=frozenset(data["allocation"]),
            dropped=frozenset(data.get("dropped", ())),
            plan=HardeningPlan.from_dict(data.get("plan", {})),
            mapping=Mapping(data["mapping"]),
        )
