"""The ``Naive`` baseline analysis (paper §3, §5.1).

Task dropping can be handled statically by giving every droppable task the
execution-time range ``[0, wcet]`` — it may or may not run — and charging
every hardened task its critical-state worst case in a single analysis
run.  This is safe but very pessimistic: it ignores the chronological
structure of state changes (no re-execution or dropping can happen before
the first fault), which is exactly the information Algorithm 1 exploits.
"""

import warnings
from typing import Dict, Iterable, Optional, Tuple

from repro.core.analysis import GraphVerdict, MCAnalysisResult
from repro.hardening.transform import HardenedSystem
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.comm import default_comm
from repro.sched.comm import CommModel
from repro.sched.jobs import unroll
from repro.sched.priority import assign_priorities
from repro.sched.wcrt import SchedBackend, WindowAnalysisBackend


class NaiveAnalysis:
    """Single-run static analysis with pessimistic execution-time ranges.

    Bounds per task:

    * droppable task of a graph in ``T_d`` — ``[0, wcet]``;
    * re-executable task — ``[bcet + dt, Eq. (1)]``;
    * passive copy — ``[0, wcet]`` (it may always be requested);
    * everything else — ``[bcet, wcet]``.
    """

    def __init__(
        self,
        backend: Optional[SchedBackend] = None,
        comm: Optional[CommModel] = None,
        policy: str = "fp",
        bus_contention: bool = False,
        **legacy,
    ):
        if legacy:
            # Kwargs that only Algorithm 1 understands (granularity,
            # fast_path, ...) used to raise here, encouraging per-method
            # call sites; accept and ignore them so the methods stay
            # interchangeable, but steer callers to the factory.
            warnings.warn(
                f"NaiveAnalysis ignores {sorted(legacy)}; build analysis "
                f"methods via repro.core.make_analysis()",
                DeprecationWarning,
                stacklevel=2,
            )
        self._backend: SchedBackend = backend or WindowAnalysisBackend()
        self._comm = comm
        self._policy = policy
        self._bus_contention = bus_contention

    def analyze(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
        dropped: Iterable[str] = (),
    ) -> MCAnalysisResult:
        """Run the naive analysis; result mirrors Algorithm 1's shape."""
        dropped_set = hardened.source.validate_drop_set(dropped)

        bounds: Dict[str, Tuple[float, float]] = {}
        for graph in hardened.applications.graphs:
            statically_droppable = graph.name in dropped_set
            for task in graph.tasks:
                nominal_bcet, _nominal_wcet = hardened.nominal_bounds(task.name)
                worst = hardened.critical_wcet(task.name)
                if statically_droppable:
                    bounds[task.name] = (0.0, worst)
                elif hardened.is_passive(task.name):
                    bounds[task.name] = (0.0, task.wcet)
                else:
                    bounds[task.name] = (nominal_bcet, worst)

        comm = self._comm if self._comm is not None else default_comm(architecture)
        priorities = assign_priorities(hardened.applications)
        jobset = unroll(
            hardened.applications,
            mapping,
            architecture,
            comm=comm,
            priorities=priorities,
            bounds=bounds,
            policy=self._policy,
            bus_contention=self._bus_contention,
        )
        result = self._backend.analyze(jobset)

        verdicts = {}
        for graph in hardened.applications.graphs:
            wcrt = result.graph_wcrt(graph.name)
            verdicts[graph.name] = GraphVerdict(
                graph=graph.name,
                wcrt=wcrt,
                normal_wcrt=wcrt,
                deadline=graph.deadline,
                dropped=graph.name in dropped_set,
                worst_transition="static",
            )
        task_completion = {
            task.name: result.task_max_finish(task.name)
            for task in hardened.applications.all_tasks
        }
        return MCAnalysisResult(
            verdicts=verdicts,
            transitions=(),
            task_completion=task_completion,
            granularity="static",
        )
