"""Fast-path machinery for Algorithm 1: memoization, warm starts, pruning.

Algorithm 1 runs one ``sched()`` back-end invocation per normal-to-
critical transition, and the DSE loop evaluates thousands of design
points, each repeating the full enumeration.  Three observations make
most of that work redundant:

1. **Memoization** — many transitions induce *identical* ``[bcet, wcet]``
   interval sets (e.g. re-executable triggers whose windows classify the
   rest of the system the same way), and GA candidates frequently decode
   to job sets already analyzed for an earlier candidate.  A bounded LRU
   keyed on the canonical :meth:`~repro.sched.jobs.JobSet.fingerprint`
   returns the cached :class:`~repro.sched.wcrt.ScheduleBounds` verbatim:
   equal fingerprints mean the back-end would see byte-identical input.

2. **Warm starts** — the holistic back-end's fixed point converges to the
   *least* fixed point from any start below it.  The normal-state
   solution is such a start for every transition run whose per-task WCETs
   dominate it (transitions only widen execution bounds), so per-
   transition iterations begin near their answer instead of from zero.
   :class:`~repro.sched.holistic.HolisticAnalysisBackend` owns the
   soundness check; this module only threads the seed through.

3. **Pruning** — a transition whose per-job override intervals are all
   *contained* in those of an already-analyzed transition cannot yield a
   larger WCRT under any back-end that is monotone in (wcet up, bcet
   down) — which both the window and holistic back-ends are.  Skipping it
   changes no reported bound, verdict, or worst-transition label.

All three are **opt-in**: :class:`MixedCriticalityAnalysis` takes
``fast_path=None`` by default and behaves exactly as before.  The DSE
evaluator opts in via :meth:`FastPathConfig.for_dse`.
"""

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.sched.jobs import JobId, JobSet
from repro.sched.wcrt import ScheduleBounds

__all__ = [
    "FastPathConfig",
    "ScheduleCache",
    "TransitionPruner",
    "configure_shared_cache",
    "shared_cache",
]


class ScheduleCache:
    """A bounded, thread-safe LRU of ``fingerprint -> ScheduleBounds``.

    One :class:`~repro.core.evaluator.Evaluator` (and hence one cache) is
    shared by every worker thread of a parallel
    :class:`~repro.dse.ga.Explorer`, so get/put take a lock.  Entries are
    immutable analysis results; returning a shared instance is safe.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise AnalysisError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, ScheduleBounds]" = OrderedDict()
        #: Lifetime hit/miss tallies (also mirrored into the metrics
        #: registry by the analysis layer).
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained results."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, key: str, jobset: Optional[JobSet] = None
    ) -> Optional[ScheduleBounds]:
        """The cached bounds for ``key``, refreshing its LRU position.

        ``jobset`` is the caller's job set for ``key``.  The in-memory
        tier ignores it (entries already carry a job set with the same
        fingerprint), but tiers that rehydrate bounds from storage — see
        :class:`repro.serve.cachestore.TieredScheduleCache` — need it to
        rebind the deserialized arrays onto live jobs.
        """
        with self._lock:
            bounds = self._entries.get(key)
            if bounds is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return bounds

    def put(self, key: str, bounds: ScheduleBounds) -> None:
        """Insert ``key``, evicting the least-recently-used entry."""
        with self._lock:
            self._entries[key] = bounds
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (tallies are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Lifetime tallies plus current occupancy, as a plain dict."""
        with self._lock:
            hits = self.hits
            misses = self.misses
            size = len(self._entries)
        requests = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "size": size,
            "capacity": self._capacity,
            "hit_rate": hits / requests if requests else 0.0,
        }


class TransitionPruner:
    """Skips transitions dominated by an already-analyzed one.

    Transition *B* is dominated by analyzed transition *A* when, for
    every first-hyperperiod job, *A*'s effective ``[bcet, wcet]``
    interval contains *B*'s (override if present, nominal base bounds
    otherwise).  For a back-end monotone in (wcet up, bcet down), *A*'s
    per-job ``max_finish`` then dominates *B*'s pointwise, so *B* can
    never raise a graph WCRT, a task-completion bound, or become a
    worst-transition label after *A* has been folded in.  Domination is
    only checked against transitions analyzed *earlier in the same run*,
    which preserves the fold order of Algorithm 1's outer loop exactly.
    """

    def __init__(self, base: JobSet):
        self._nominal: Dict[JobId, Tuple[float, float]] = {
            job.job_id: (job.bcet, job.wcet) for job in base.analyzed_jobs
        }
        self._analyzed: List[Dict[JobId, Tuple[float, float]]] = []

    def is_dominated(self, overrides: Dict[JobId, Tuple[float, float]]) -> bool:
        """Whether an analyzed transition's intervals cover ``overrides``."""
        nominal = self._nominal
        for accepted in self._analyzed:
            dominated = True
            for job_id in accepted.keys() | overrides.keys():
                a_lo, a_hi = accepted.get(job_id) or nominal[job_id]
                b_lo, b_hi = overrides.get(job_id) or nominal[job_id]
                if a_lo > b_lo or a_hi < b_hi:
                    dominated = False
                    break
            if dominated:
                return True
        return False

    def record(self, overrides: Dict[JobId, Tuple[float, float]]) -> None:
        """Register an analyzed transition as a future dominator."""
        self._analyzed.append(dict(overrides))


class FastPathConfig:
    """Switchboard for the Algorithm-1 fast path.

    Parameters
    ----------
    memoize:
        Reuse :class:`~repro.sched.wcrt.ScheduleBounds` across ``sched()``
        calls whose job sets have equal canonical fingerprints.
    cache_size:
        LRU capacity for the memoization cache.
    warm_start:
        Seed per-transition fixed points with the normal-state solution
        on back-ends advertising ``supports_warm_start``.
    prune:
        Skip transitions dominated by an already-analyzed one.  Off by
        default because it shrinks ``MCAnalysisResult.transitions`` (the
        pruned count is reported in ``transitions_pruned``); results are
        otherwise identical.
    cache:
        An existing :class:`ScheduleCache` to use instead of creating a
        private one (``cache_size`` is then ignored).  This is how the
        serving layer shares one process-wide cache across requests.

    The cache object lives on the config, so sharing one config between
    analyses (as the DSE evaluator does across GA candidates) shares the
    memoized results.
    """

    def __init__(
        self,
        memoize: bool = True,
        cache_size: int = 256,
        warm_start: bool = True,
        prune: bool = False,
        cache: Optional[ScheduleCache] = None,
    ):
        self.memoize = memoize
        self.warm_start = warm_start
        self.prune = prune
        self.cache = cache if cache is not None else ScheduleCache(cache_size)

    @classmethod
    def for_dse(cls, cache_size: int = 1024) -> "FastPathConfig":
        """The profile used by the DSE inner loop: everything on.

        Pruning is safe there because the evaluator consumes only
        aggregate WCRTs and verdicts, never the per-transition listing.
        """
        return cls(memoize=True, cache_size=cache_size, warm_start=True, prune=True)

    @classmethod
    def shared(cls) -> "FastPathConfig":
        """The profile used by the serving layer: memoization + warm
        starts against the process-wide :func:`shared_cache`.

        Pruning stays off so results (including the per-transition
        listing) are byte-identical to a cold analysis.
        """
        return cls(memoize=True, warm_start=True, prune=False, cache=shared_cache())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FastPathConfig(memoize={self.memoize}, "
            f"cache_size={self.cache.capacity}, "
            f"warm_start={self.warm_start}, prune={self.prune})"
        )


#: Default capacity of the process-wide cache (first-use creation only).
SHARED_CACHE_CAPACITY = 4096

_shared_lock = threading.Lock()
_shared: Optional[ScheduleCache] = None


def shared_cache(capacity: Optional[int] = None) -> ScheduleCache:
    """The process-wide :class:`ScheduleCache` (created on first use).

    Every caller gets the same instance, so a long-lived process (the
    ``repro serve`` service) amortizes ``sched()`` runs across requests:
    any two analyses whose job sets share a canonical
    :meth:`~repro.sched.jobs.JobSet.fingerprint` reuse one back-end run
    no matter which request computed it first.  ``capacity`` only takes
    effect on the call that creates the cache.
    """
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = ScheduleCache(
                SHARED_CACHE_CAPACITY if capacity is None else capacity
            )
        return _shared


def configure_shared_cache(cache: Optional[ScheduleCache]) -> ScheduleCache:
    """Install ``cache`` as the process-wide cache and return it.

    The serving layer calls this at startup to replace the default
    in-memory LRU with a disk-backed
    :class:`~repro.serve.cachestore.TieredScheduleCache`, so every
    :meth:`FastPathConfig.shared` analysis in the process shares warm
    state across restarts and sibling worker processes.  Passing ``None``
    installs a fresh default in-memory cache (used by tests to restore
    isolation).
    """
    global _shared
    with _shared_lock:
        _shared = cache if cache is not None else ScheduleCache(
            SHARED_CACHE_CAPACITY
        )
        return _shared
