"""A uniform way to build the three analysis methods.

The paper's evaluation compares three analyses — the proposed Algorithm 1
(:class:`~repro.core.analysis.MixedCriticalityAnalysis`), the ``Naive``
static baseline, and the ``Adhoc`` worst-trace simulation — but their
constructors drifted apart as options accumulated (granularity and
fast-path knobs only make sense for Algorithm 1, back-end selection only
for the analytical methods, and so on).  This module gives callers one
front door:

* :data:`AnalysisMethod` — the behavioural protocol every method
  satisfies: ``analyze(hardened, architecture, mapping, dropped) ->
  MCAnalysisResult``;
* :func:`make_backend` — ``sched()`` back-end by name;
* :func:`make_analysis` — analysis method by name, accepting the union
  of the options and routing each to the methods that understand it.

The CLI's ``--method``/``--backend`` flags and the :mod:`repro.api`
facade both go through :func:`make_analysis`.
"""

from typing import Iterable, Optional, Protocol, Union, runtime_checkable

from repro.core.adhoc import AdhocAnalysis
from repro.core.analysis import MCAnalysisResult, MixedCriticalityAnalysis
from repro.core.fastpath import FastPathConfig
from repro.core.naive import NaiveAnalysis
from repro.errors import AnalysisError
from repro.hardening.transform import HardenedSystem
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.sched.comm import CommModel
from repro.sched.wcrt import SchedBackend, WindowAnalysisBackend

__all__ = [
    "ANALYSIS_METHODS",
    "SCHED_BACKENDS",
    "AnalysisMethod",
    "make_analysis",
    "make_backend",
    "make_dse_evaluator",
]

#: Method names accepted by :func:`make_analysis`.
ANALYSIS_METHODS = ("proposed", "naive", "adhoc")

#: Back-end names accepted by :func:`make_backend`.
SCHED_BACKENDS = ("window", "fast", "holistic")


@runtime_checkable
class AnalysisMethod(Protocol):
    """What every analysis method exposes (duck-typed, checkable)."""

    def analyze(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
        dropped: Iterable[str] = (),
    ) -> MCAnalysisResult:
        """Analyze a hardened, mapped system under a drop set."""
        ...  # pragma: no cover - protocol stub


def make_backend(name: str) -> SchedBackend:
    """Instantiate a ``sched()`` back-end by registry name."""
    if name == "window":
        return WindowAnalysisBackend()
    if name == "fast":
        from repro.sched.fast import FastWindowAnalysisBackend

        return FastWindowAnalysisBackend()
    if name == "holistic":
        from repro.sched.holistic import HolisticAnalysisBackend

        return HolisticAnalysisBackend()
    raise AnalysisError(
        f"unknown sched backend {name!r}; available: {SCHED_BACKENDS}"
    )


def make_analysis(
    method: str = "proposed",
    backend: Union[SchedBackend, str, None] = None,
    granularity: str = "job",
    comm: Union[CommModel, str, None] = None,
    comm_arq: Optional[int] = None,
    comm_arq_timeout: Optional[float] = None,
    policy: str = "fp",
    bus_contention: bool = False,
    zero_dropped_bcet: bool = False,
    fast_path: Union[FastPathConfig, bool, None] = None,
) -> AnalysisMethod:
    """Build an analysis method from the union of the options.

    Options that a method has no use for are ignored, mirroring how the
    CLI always carried the full flag set: ``naive`` runs one back-end
    pass (no granularity, no fast path), ``adhoc`` simulates a single
    trace (no back-end at all).

    ``backend`` accepts an instance or one of :data:`SCHED_BACKENDS`;
    ``comm`` accepts a model/backend instance or one of
    :data:`repro.comm.COMM_BACKENDS` (with optional ``comm_arq`` /
    ``comm_arq_timeout`` ARQ overrides — giving only the overrides
    applies them to whatever backend each analyzed architecture names);
    ``fast_path`` accepts a config, ``True`` for the defaults, or
    ``None``/``False`` for the historical cold path.
    """
    if method not in ANALYSIS_METHODS:
        raise AnalysisError(
            f"unknown analysis method {method!r}; available: {ANALYSIS_METHODS}"
        )
    if isinstance(backend, str):
        backend = make_backend(backend)
    if isinstance(comm, str):
        from repro.comm import make_comm

        comm = make_comm(
            comm, arq_retries=comm_arq, arq_timeout=comm_arq_timeout
        )
    elif comm is None and (comm_arq is not None or comm_arq_timeout is not None):
        from repro.comm import make_comm

        comm = make_comm(
            None, arq_retries=comm_arq, arq_timeout=comm_arq_timeout
        )
    if fast_path is True:
        fast_path = FastPathConfig()
    elif fast_path is False:
        fast_path = None
    if method == "proposed":
        return MixedCriticalityAnalysis(
            backend=backend,
            granularity=granularity,
            comm=comm,
            zero_dropped_bcet=zero_dropped_bcet,
            policy=policy,
            bus_contention=bus_contention,
            fast_path=fast_path,
        )
    if method == "naive":
        return NaiveAnalysis(
            backend=backend,
            comm=comm,
            policy=policy,
            bus_contention=bus_contention,
        )
    return AdhocAnalysis(comm=comm, policy=policy)


def make_dse_evaluator(problem, backend: Optional[str] = None):
    """The GA's design-point evaluator for a named sched back-end.

    One validation path for CLI, HTTP, and the api facade: unknown names
    raise with the registry listed, and ``None``/``"fast"`` build the
    same evaluator the Explorer would default to (task granularity, the
    DSE fast path, the problem's communication model).
    """
    from repro.core.evaluator import Evaluator

    if backend is None or backend == "fast":
        return Evaluator(problem)
    if backend not in SCHED_BACKENDS:
        raise AnalysisError(
            f"unknown sched backend {backend!r}; available: {SCHED_BACKENDS}"
        )
    return Evaluator(
        problem,
        analysis=make_analysis(
            backend=backend,
            granularity="task",
            comm=problem.comm_model(),
            fast_path=FastPathConfig.for_dse(),
        ),
    )
