"""Design-point evaluation: feasibility and objectives (paper §2.3, §4).

A design point is *feasible* when

1. its mapping is total over ``T'`` and uses only allocated processors;
2. replicas of the same task sit on pairwise different processors
   (otherwise a single processor's fault correlates the copies);
3. every non-droppable application meets its reliability constraint;
4. every application that stays alive in the critical state meets its
   deadline under the mixed-criticality WCRT analysis, and every dropped
   application meets its deadline in the normal state.

Feasible points are scored with the two paper objectives: minimise the
expected power, maximise the post-drop quality of service.
"""

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.analysis import MCAnalysisResult, MixedCriticalityAnalysis
from repro.core.power import PowerModel
from repro.core.problem import DesignPoint, Problem
from repro.errors import MappingError, ReproError
from repro.hardening.transform import HardenedSystem, harden
from repro.obs import events as obs_events
from repro.obs.events import EvaluationCompleted
from repro.obs.metrics import metrics
from repro.reliability.constraints import check_reliability


@dataclass
class EvaluationResult:
    """Outcome of evaluating one design point."""

    #: ``None`` when the candidate never decoded into a design point
    #: (chromosomes undecodable even after repair are hard-penalized).
    design: Optional[DesignPoint]
    feasible: bool
    violations: List[str] = field(default_factory=list)
    #: Expected power (objective 1, minimise); ``None`` when the design is
    #: too broken to compute it (e.g. invalid mapping).
    power: Optional[float] = None
    #: Post-drop quality of service (objective 2, maximise).
    service: Optional[float] = None
    #: The WCRT analysis result, when the analysis stage was reached.
    analysis: Optional[MCAnalysisResult] = None
    #: The hardened system, when hardening succeeded.
    hardened: Optional[HardenedSystem] = None
    #: Aggregate magnitude of the constraint violations (0 when feasible).
    severity: float = 0.0
    #: Name of the degraded backend that produced this result, when the
    #: evaluation guard fell back (``None`` for primary-backend results).
    fallback: Optional[str] = None
    #: ``"ExcType: message"`` of the exception the evaluation guard
    #: absorbed when this result is a guarded failure.
    guard_error: Optional[str] = None

    @property
    def objectives(self) -> Tuple[float, float]:
        """(power, -service) — both to minimise.

        Infeasible designs return a penalty vector far above any feasible
        one (§4: "we penalize the solution with an exceedingly bad fitness
        value"), graded by violation severity so that the selection
        pressure still points towards feasibility.
        """
        if not self.feasible or self.power is None or self.service is None:
            penalty = 1e9 + 1e6 * (len(self.violations) + self.severity)
            return (penalty, penalty)
        return (self.power, -self.service)


class Evaluator:
    """Evaluates design points for a fixed problem instance."""

    def __init__(
        self,
        problem: Problem,
        analysis: Optional[MixedCriticalityAnalysis] = None,
        power_model: Optional[PowerModel] = None,
    ):
        self._problem = problem
        if analysis is None:
            # DSE hot path: per-task trigger granularity (conservative,
            # one back-end run per hardened task) on the vectorised
            # back-end, with the full fast path — GA candidates that
            # decode to previously-seen job sets hit the memo cache, and
            # dominated transitions are pruned before the back-end runs.
            from repro.core.fastpath import FastPathConfig
            from repro.sched.fast import FastWindowAnalysisBackend

            analysis = MixedCriticalityAnalysis(
                backend=FastWindowAnalysisBackend(),
                granularity="task",
                comm=problem.comm_model(),
                fast_path=FastPathConfig.for_dse(),
            )
        self._analysis = analysis
        self._power = power_model or PowerModel(problem.architecture)

    @property
    def problem(self) -> Problem:
        """The problem instance this evaluator serves."""
        return self._problem

    def evaluate(self, design: DesignPoint) -> EvaluationResult:
        """Check feasibility and compute the objectives of a design point."""
        started = time.perf_counter()
        result = self._evaluate(design)
        seconds = time.perf_counter() - started

        registry = metrics()
        registry.counter("eval.evaluations").inc()
        registry.counter(
            "eval.feasible" if result.feasible else "eval.infeasible"
        ).inc()
        registry.timer("eval.seconds").observe(seconds)
        bus = obs_events.bus()
        if bus.wants(EvaluationCompleted):
            bus.publish(
                EvaluationCompleted(
                    feasible=result.feasible,
                    power=result.power,
                    service=result.service,
                    violations=len(result.violations),
                    seconds=seconds,
                )
            )
        return result

    def _evaluate(self, design: DesignPoint) -> EvaluationResult:
        violations: List[str] = []

        try:
            hardened = harden(self._problem.applications, design.plan)
        except ReproError as error:
            return EvaluationResult(
                design=design,
                feasible=False,
                violations=[f"hardening: {error}"],
            )

        try:
            design.mapping.validate(
                hardened.applications,
                self._problem.architecture,
                allocated=design.allocation,
            )
        except MappingError as error:
            return EvaluationResult(
                design=design,
                feasible=False,
                violations=[f"mapping: {error}"],
                hardened=hardened,
            )

        severity = 0.0
        placement = self._replica_placement_violations(hardened, design)
        violations.extend(placement)
        severity += 10.0 * len(placement)
        for violation in check_reliability(
            hardened, design.mapping, self._problem.architecture
        ):
            violations.append(f"reliability: {violation}")
            severity += min(
                20.0, math.log10(max(violation.failure_rate / violation.target, 1.0))
            )

        try:
            dropped = hardened.source.validate_drop_set(design.dropped)
        except ReproError as error:
            violations.append(f"drop set: {error}")
            dropped = frozenset()

        analysis = self._analysis.analyze(
            hardened,
            self._problem.architecture,
            design.mapping,
            dropped=dropped,
        )
        for verdict in analysis.verdicts.values():
            if not verdict.meets_deadline:
                violations.append(
                    f"deadline: application {verdict.graph!r} WCRT "
                    f"{verdict.wcrt:.3f} exceeds deadline {verdict.deadline:.3f}"
                )
                severity += (verdict.wcrt - verdict.deadline) / verdict.deadline

        power = self._power.expected_power(
            hardened, design.mapping, design.allocation
        )
        service = self._problem.applications.service_of(dropped)
        return EvaluationResult(
            design=design,
            feasible=not violations,
            violations=violations,
            power=power,
            service=service,
            analysis=analysis,
            hardened=hardened,
            severity=severity,
        )

    def _replica_placement_violations(
        self, hardened: HardenedSystem, design: DesignPoint
    ) -> List[str]:
        """Replicas of one task must sit on pairwise different processors."""
        violations: List[str] = []
        for primary, group in sorted(hardened.replica_groups.items()):
            processors = [design.mapping.get(name) for name in group]
            if len(set(processors)) != len(processors):
                violations.append(
                    f"replication: copies of task {primary!r} share a "
                    f"processor ({processors})"
                )
        return violations
