"""The ``Adhoc`` baseline (paper §5.1).

An artificial worst-case scheduling trace: the system enters the critical
state at the beginning of the hyperperiod, every re-executable task is
maximally re-executed (``wcet'`` of Eq. (1)), every passively replicated
group is triggered, and all applications of ``T_d`` are dropped from the
start.  The observed response times of this single deterministic trace
are recorded as the estimate.

Because it is one trace out of many possible interleavings, Adhoc is *not*
safe — the paper observes it falling below the Monte-Carlo maximum in some
mappings, which is the motivation for a real worst-case analysis.
"""

import warnings
from typing import Dict, Iterable, Optional

from repro.core.analysis import GraphVerdict, MCAnalysisResult
from repro.hardening.transform import HardenedSystem
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.sched.comm import CommModel
from repro.sim.engine import Simulator
from repro.sim.faults import adhoc_profile
from repro.sim.sampler import WorstCaseSampler


class AdhocAnalysis:
    """Deterministic worst-trace estimation of response times."""

    def __init__(
        self, comm: Optional[CommModel] = None, policy: str = "fp", **legacy
    ):
        if legacy:
            # Adhoc simulates a trace: analytical kwargs (backend,
            # granularity, bus_contention, fast_path, ...) have nothing
            # to configure.  Accept and ignore them so the methods stay
            # interchangeable, but steer callers to the factory.
            warnings.warn(
                f"AdhocAnalysis ignores {sorted(legacy)}; build analysis "
                f"methods via repro.core.make_analysis()",
                DeprecationWarning,
                stacklevel=2,
            )
        self._comm = comm
        self._policy = policy

    def analyze(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
        dropped: Iterable[str] = (),
    ) -> MCAnalysisResult:
        """Simulate the ad-hoc worst trace; result mirrors Algorithm 1's shape.

        Applications of ``T_d`` are dropped from time zero and therefore
        carry no response time: their verdict reports a WCRT of 0 and is
        marked dropped.
        """
        dropped_set = hardened.source.validate_drop_set(dropped)
        simulator = Simulator(
            hardened,
            architecture,
            mapping,
            dropped=tuple(dropped_set),
            comm=self._comm,
            policy=self._policy,
        )
        result = simulator.run(
            profile=adhoc_profile(hardened),
            sampler=WorstCaseSampler(),
            hyperperiods=1,
            drop_from_start=True,
        )

        verdicts: Dict[str, GraphVerdict] = {}
        task_completion: Dict[str, float] = {}
        for graph in hardened.applications.graphs:
            observed = result.graph_response_time(graph.name)
            wcrt = 0.0 if observed is None else observed
            verdicts[graph.name] = GraphVerdict(
                graph=graph.name,
                wcrt=wcrt,
                normal_wcrt=wcrt,
                deadline=graph.deadline,
                dropped=graph.name in dropped_set,
                worst_transition="adhoc-trace",
            )
        return MCAnalysisResult(
            verdicts=verdicts,
            transitions=(),
            task_completion=task_completion,
            granularity="adhoc",
        )
