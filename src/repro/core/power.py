"""Expected power consumption of a design point (paper §2.3).

The objective minimised by the DSE is

    ``sum_{p in allocation} (stat_p + dyn_p * u_p)``

where ``u_p`` is the *average* utilization of processor ``p``, considering
all possible fault cases:

* a re-executable task contributes its nominal time plus the expected
  re-execution time (faults are rare, so this term is tiny);
* active replicas and voters contribute on every instance;
* passive replicas contribute only with the probability that the voter
  requests them — this is exactly why passive replication "is
  particularly beneficial when the system is to be optimized to minimize
  the average utilization or the average power dissipation" (§2.2);
* droppable applications contribute fully: dropping only happens in the
  rare critical state, so the *average* behaviour is the normal mode.
"""

from typing import Dict, Iterable

from repro.errors import AnalysisError
from repro.hardening.spec import HardeningKind
from repro.hardening.transform import HardenedSystem
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.model.task import TaskRole
from repro.reliability.faults import execution_fault_probability


class PowerModel:
    """Computes expected utilizations and the expected-power objective.

    Parameters
    ----------
    architecture:
        The platform (provides per-processor power and fault parameters).
    use_average_execution:
        When ``True`` (default) the average of ``bcet`` and ``wcet`` is
        used as the expected execution time of one run; when ``False`` the
        conservative ``wcet`` is charged.
    """

    def __init__(self, architecture: Architecture, use_average_execution: bool = True):
        self._architecture = architecture
        self._use_average = use_average_execution

    def expected_execution_time(
        self, hardened: HardenedSystem, task_name: str, processor_name: str
    ) -> float:
        """Expected busy time one instance of a ``T'`` task costs its PE."""
        task = hardened.applications.task(task_name)
        processor = self._architecture.processor(processor_name)
        primary = hardened.derived_to_primary.get(task_name, task_name)
        spec = hardened.plan.spec_of(primary)

        if task.role is TaskRole.VOTER:
            return processor.scale_time(task.wcet)

        if hardened.is_time_redundant(task_name):
            redundancy = hardened.time_redundancy[task_name]
            nominal_bcet, nominal_wcet = hardened.nominal_bounds(task_name)
            single = processor.scale_time(
                self._base_time(nominal_bcet, nominal_wcet)
            )
            fault = execution_fault_probability(
                processor.fault_rate, processor.scale_time(nominal_wcet)
            )
            recovery_bcet, recovery_wcet = hardened.recovery_bounds(task_name)
            recovery = processor.scale_time(
                self._base_time(recovery_bcet, recovery_wcet)
            )
            expected_recoveries = sum(
                fault**i for i in range(1, redundancy.reexecutions + 1)
            )
            return single + expected_recoveries * recovery

        base = processor.scale_time(self._base_time(task.bcet, task.wcet))
        if hardened.is_passive(task_name):
            return base * self._passive_trigger_probability(hardened, primary)
        return base

    def utilizations(
        self, hardened: HardenedSystem, mapping: Mapping
    ) -> Dict[str, float]:
        """Average utilization ``u_p`` of every processor hosting tasks."""
        load: Dict[str, float] = {}
        for graph in hardened.applications.graphs:
            for task in graph.tasks:
                processor_name = mapping[task.name]
                expected = self.expected_execution_time(
                    hardened, task.name, processor_name
                )
                load[processor_name] = (
                    load.get(processor_name, 0.0) + expected / graph.period
                )
        return load

    def expected_power(
        self,
        hardened: HardenedSystem,
        mapping: Mapping,
        allocation: Iterable[str],
    ) -> float:
        """The DSE power objective over the allocated processors."""
        allocated = frozenset(allocation)
        used = mapping.used_processors
        missing = used - allocated
        if missing:
            raise AnalysisError(
                f"tasks are mapped on unallocated processors: {sorted(missing)}"
            )
        utilizations = self.utilizations(hardened, mapping)
        total = 0.0
        # Sorted so the float summation order (and thus the exact result
        # bits) is independent of set iteration order / hash seed — runs
        # must be reproducible across processes for checkpoint/resume.
        for name in sorted(allocated):
            processor = self._architecture.processor(name)
            total += processor.static_power
            total += processor.dynamic_power * utilizations.get(name, 0.0)
        return total

    def worst_case_utilizations(
        self, hardened: HardenedSystem, mapping: Mapping
    ) -> Dict[str, float]:
        """Critical-state WCET utilization per processor.

        Charges Eq. (1) for re-executable tasks and full WCET for passive
        copies; useful as a quick necessary condition for schedulability.
        """
        load: Dict[str, float] = {}
        for graph in hardened.applications.graphs:
            for task in graph.tasks:
                processor = self._architecture.processor(mapping[task.name])
                worst = processor.scale_time(hardened.critical_wcet(task.name))
                load[processor.name] = (
                    load.get(processor.name, 0.0) + worst / graph.period
                )
        return load

    def _base_time(self, bcet: float, wcet: float) -> float:
        if self._use_average:
            return 0.5 * (bcet + wcet)
        return wcet

    def _passive_trigger_probability(
        self, hardened: HardenedSystem, primary: str
    ) -> float:
        """Probability that a passive copy of ``primary`` is requested.

        The voter requests passives when at least one active copy delivered
        a faulty value.  Uses the fault rate of each active copy's
        processor; because the mapping is needed, the actives' processors
        are resolved lazily from the hardened system's replica group and
        the worst (highest) fault rate is charged for robustness when the
        mapping is unavailable here — the exact per-PE computation happens
        in :meth:`utilizations` via this method's caller supplying the
        group context.
        """
        spec = hardened.plan.spec_of(primary)
        if spec.kind is not HardeningKind.PASSIVE:
            return 1.0
        task = hardened.applications.task(primary)
        worst_rate = max(p.fault_rate for p in self._architecture.processors)
        per_copy = execution_fault_probability(worst_rate, task.wcet)
        actives = spec.effective_active_replicas
        return 1.0 - (1.0 - per_copy) ** actives
