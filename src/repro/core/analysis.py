"""The proposed mixed-criticality WCRT analysis — Algorithm 1 of the paper.

The hardening techniques make worst-case analysis hard for three reasons
(paper §3): passive replicas only run when the voter requests them,
re-execution releases a variable number of jobs, and entering the critical
state detaches droppable tasks from the scheduler.  Naively widening every
execution-time range is safe but very pessimistic.

Algorithm 1 instead performs one schedulability run per *possible state
transition*: for every task ``v`` that may trigger the critical state (a
re-executable or passively replicated task experiencing its first fault in
the hyperperiod), all other tasks ``w`` are classified using the
normal-state windows ``[minStart, maxFinish]``:

* ``maxFinish_w < minStart_v`` — ``w`` certainly completed before the
  fault: it keeps its normal bounds (passive copies stay ``[0, 0]``);
* otherwise ``w`` may be affected:

  * droppable ``w`` starting after ``maxFinish_v`` is certainly dropped —
    bounds ``[0, 0]``;
  * droppable ``w`` overlapping the transition may either run or be
    dropped — bounds ``[0, wcet_w]``;
  * non-droppable re-executable ``w`` gets Eq. (1) as its worst case;
  * non-droppable passive copies get ``[0, wcet_w]`` (they may be
    requested by a later fault).

The triggering task itself takes its critical-state bounds: Eq. (1) for
re-execution, activated replicas (``[0, wcet]``) for passive replication.

The per-processor ``sched`` back-end is pluggable
(:class:`~repro.sched.wcrt.SchedBackend`); the default is the
window-based analysis of :class:`~repro.sched.wcrt.WindowAnalysisBackend`.

Multiple faults per hyperperiod are covered even though transitions are
enumerated one trigger at a time: whichever fault happens *first*
anchors the timeline classification, and under that trigger every other
re-executable task already carries its Eq. (1) worst case (it may fault
later), passive copies may be requested, and droppables past the
transition stay dropped regardless of further faults — so each
enumerated transition soundly bounds all executions whose first fault is
that trigger.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.fastpath import FastPathConfig, TransitionPruner
from repro.errors import AnalysisError
from repro.hardening.spec import HardeningKind
from repro.hardening.transform import CriticalTrigger, HardenedSystem
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.obs import events as obs_events
from repro.obs.events import ScenarioAnalyzed
from repro.obs.metrics import metrics
from repro.obs.trace import annotate, span as trace_span
from repro.comm import default_comm
from repro.sched.comm import CommModel
from repro.sched.jobs import JobId, JobSet, unroll
from repro.sched.priority import assign_priorities
from repro.sched.wcrt import ScheduleBounds, SchedBackend, WindowAnalysisBackend

#: How state transitions are enumerated: one analysis per trigger *job*
#: (faithful to "the first fault in the hyperperiod") or one per trigger
#: *task* with anchors aggregated over its instances (coarser, strictly
#: more conservative, and cheaper — used by the DSE inner loop).
TRIGGER_GRANULARITIES = ("job", "task")


@dataclass(frozen=True)
class TransitionInfo:
    """One analyzed normal-to-critical transition."""

    trigger_primary: str
    trigger_kind: HardeningKind
    #: Instance index of the trigger, or ``None`` at task granularity.
    instance: Optional[int]
    #: ``minStart_v`` — earliest moment the first fault can occur.
    min_start: float
    #: ``maxFinish_v`` — moment from which droppables certainly vanished.
    max_finish: float
    #: Per-graph WCRT under this transition (non-dropped graphs only).
    wcrt: Dict[str, float]


@dataclass(frozen=True)
class GraphVerdict:
    """Analysis outcome for one application."""

    graph: str
    #: WCRT over the normal state and every transition the graph survives.
    wcrt: float
    #: WCRT in the fault-free normal state.
    normal_wcrt: float
    deadline: float
    #: Whether the graph belongs to the dropped set ``T_d``.
    dropped: bool
    #: Transition yielding the WCRT (``None`` when the normal state does).
    worst_transition: Optional[str]

    @property
    def meets_deadline(self) -> bool:
        """Deadline satisfaction (dropped graphs: normal state only)."""
        return self.wcrt <= self.deadline + 1e-9


@dataclass(frozen=True)
class MCAnalysisResult:
    """Complete result of the mixed-criticality analysis."""

    verdicts: Dict[str, GraphVerdict]
    transitions: Tuple[TransitionInfo, ...]
    #: Safe upper bound on the completion time of every task (the return
    #: value of the paper's Algorithm 1, for every ``v_in`` at once).
    task_completion: Dict[str, float]
    granularity: str
    #: Transitions skipped as dominated by an analyzed one (fast path
    #: with pruning enabled only; always 0 otherwise).
    transitions_pruned: int = 0

    @property
    def schedulable(self) -> bool:
        """Whether every application meets its deadline."""
        return all(v.meets_deadline for v in self.verdicts.values())

    @property
    def transitions_analyzed(self) -> int:
        """Number of state transitions the analysis enumerated."""
        return len(self.transitions)

    def wcrt_of(self, graph_name: str) -> float:
        """WCRT of one application."""
        try:
            return self.verdicts[graph_name].wcrt
        except KeyError:
            raise AnalysisError(f"no verdict for graph {graph_name!r}") from None

    def completion_bound(self, task_name: str) -> float:
        """Algorithm 1's return value for ``v_in = task_name``."""
        try:
            return self.task_completion[task_name]
        except KeyError:
            raise AnalysisError(f"no completion bound for task {task_name!r}") from None


class MixedCriticalityAnalysis:
    """Algorithm 1: WCRT analysis under hardening and task dropping.

    Parameters
    ----------
    backend:
        The ``sched`` function; defaults to
        :class:`~repro.sched.wcrt.WindowAnalysisBackend`.
    granularity:
        ``"job"`` (default, faithful) or ``"task"`` (conservative, cheap).
    comm:
        Channel-latency model override.
    policy:
        Per-processor scheduling policy: ``"fp"`` (default) or ``"edf"``.
    bus_contention:
        Model the shared bus as a priority-arbitrated resource (message
        jobs) instead of reserved bandwidth.
    fast_path:
        Optional :class:`~repro.core.fastpath.FastPathConfig` enabling
        ``sched()`` memoization, warm-started fixed points, and dominated-
        transition pruning.  ``None`` (default) preserves the historical
        one-back-end-run-per-transition behavior exactly.
    """

    def __init__(
        self,
        backend: Optional[SchedBackend] = None,
        granularity: str = "job",
        comm: Optional[CommModel] = None,
        zero_dropped_bcet: bool = False,
        policy: str = "fp",
        bus_contention: bool = False,
        fast_path: Optional[FastPathConfig] = None,
    ):
        if granularity not in TRIGGER_GRANULARITIES:
            raise AnalysisError(
                f"granularity must be one of {TRIGGER_GRANULARITIES}, "
                f"got {granularity!r}"
            )
        self._backend: SchedBackend = backend or WindowAnalysisBackend()
        self._granularity = granularity
        self._comm = comm
        #: Per-processor scheduling policy ("fp" or "edf"), forwarded to
        #: the job unrolling; the simulator accepts the same option.
        self._policy = policy
        #: Model cross-processor transfers as priority-arbitrated bus
        #: jobs instead of reserved-bandwidth latencies (analysis-only).
        self._bus_contention = bus_contention
        # Algorithm 1's line 23 writes the transition-mode bounds as
        # ``[0, wcet]``.  With a window back-end, zeroing the bcet *widens*
        # the execution windows of maybe-dropped jobs and therefore
        # inflates interference on the surviving tasks — the opposite of
        # what dropping achieves.  Keeping the nominal bcet is sound for
        # the transition runs: the normal-state, interference-free
        # earliest-start bounds remain valid lower bounds in every
        # critical-state scenario (a job that runs at all runs no earlier
        # than its fault-free best case).  Set ``zero_dropped_bcet=True``
        # for the literal (more pessimistic) reading of the algorithm.
        self._zero_dropped_bcet = zero_dropped_bcet
        self._fast_path = fast_path

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def analyze(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
        dropped: Iterable[str] = (),
    ) -> MCAnalysisResult:
        """Run Algorithm 1 for a hardened system under a drop set ``T_d``."""
        with trace_span("analysis.run", granularity=self._granularity) as sp:
            result = self._analyze_impl(hardened, architecture, mapping, dropped)
            sp.set_attributes(
                transitions=result.transitions_analyzed,
                transitions_pruned=result.transitions_pruned,
                schedulable=result.schedulable,
            )
            return result

    def _analyze_impl(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
        dropped: Iterable[str] = (),
    ) -> MCAnalysisResult:
        registry = metrics()
        registry.counter("analysis.runs").inc()
        dropped_set = hardened.source.validate_drop_set(dropped)
        base = self._base_jobset(hardened, architecture, mapping)
        with trace_span("analysis.normal"):
            normal = self._sched(base)

        graph_wcrt: Dict[str, float] = {}
        normal_wcrt: Dict[str, float] = {}
        worst_transition: Dict[str, Optional[str]] = {}
        for graph in hardened.applications.graphs:
            wcrt = normal.graph_wcrt(graph.name)
            graph_wcrt[graph.name] = wcrt
            normal_wcrt[graph.name] = wcrt
            worst_transition[graph.name] = None

        task_completion: Dict[str, float] = {
            task.name: normal.task_max_finish(task.name)
            for task in hardened.applications.all_tasks
        }

        fast = self._fast_path
        warm_seed = normal if fast is not None and fast.warm_start else None
        pruner = (
            TransitionPruner(base) if fast is not None and fast.prune else None
        )
        transitions_pruned = 0
        transitions: List[TransitionInfo] = []
        for trigger, instance, window in self._enumerate_transitions(
            hardened, base, normal
        ):
            label = (
                trigger.primary
                if instance is None
                else f"{trigger.primary}@{instance}"
            )
            overrides = self._transition_overrides(
                hardened,
                architecture,
                mapping,
                base,
                normal,
                trigger,
                instance,
                window,
                dropped_set,
            )
            if pruner is not None:
                if pruner.is_dominated(overrides):
                    transitions_pruned += 1
                    continue
                pruner.record(overrides)
            with trace_span("analysis.transition", trigger=label):
                bounds = self._sched(
                    base.with_bounds(overrides), seed=warm_seed
                )
            transition_wcrt: Dict[str, float] = {}
            for graph in hardened.applications.graphs:
                if graph.name in dropped_set:
                    continue
                wcrt = bounds.graph_wcrt(graph.name)
                transition_wcrt[graph.name] = wcrt
                if wcrt > graph_wcrt[graph.name]:
                    graph_wcrt[graph.name] = wcrt
                    worst_transition[graph.name] = label
            for task in hardened.applications.all_tasks:
                if hardened.source.owner_of(
                    hardened.derived_to_primary[task.name]
                ).name in dropped_set:
                    continue
                finish = bounds.task_max_finish(task.name)
                if finish > task_completion[task.name]:
                    task_completion[task.name] = finish
            transitions.append(
                TransitionInfo(
                    trigger_primary=trigger.primary,
                    trigger_kind=trigger.kind,
                    instance=instance,
                    min_start=window[0],
                    max_finish=window[1],
                    wcrt=transition_wcrt,
                )
            )
            bus = obs_events.bus()
            if bus.wants(ScenarioAnalyzed):
                bus.publish(
                    ScenarioAnalyzed(
                        trigger=label,
                        granularity=self._granularity,
                        sweeps=bounds.sweeps,
                    )
                )
        registry.counter("analysis.transitions").inc(len(transitions))
        if pruner is not None:
            registry.counter("analysis.prune.skipped").inc(transitions_pruned)

        verdicts = {
            graph.name: GraphVerdict(
                graph=graph.name,
                wcrt=graph_wcrt[graph.name],
                normal_wcrt=normal_wcrt[graph.name],
                deadline=graph.deadline,
                dropped=graph.name in dropped_set,
                worst_transition=worst_transition[graph.name],
            )
            for graph in hardened.applications.graphs
        }
        return MCAnalysisResult(
            verdicts=verdicts,
            transitions=tuple(transitions),
            task_completion=task_completion,
            granularity=self._granularity,
            transitions_pruned=transitions_pruned,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _sched(
        self, jobset: JobSet, seed: Optional[ScheduleBounds] = None
    ) -> ScheduleBounds:
        """One ``sched()`` back-end invocation, with telemetry.

        With a memoizing fast path, job sets whose canonical fingerprints
        match a cached entry return the cached bounds without touching
        the back-end (and without counting as an invocation — the
        ``sched.sweeps``/``sched.invocations`` pairing stays exact).
        """
        registry = metrics()
        fast = self._fast_path
        key: Optional[str] = None
        if fast is not None and fast.memoize:
            key = jobset.fingerprint()
            cached = fast.cache.get(key, jobset)
            if cached is not None:
                registry.counter("analysis.cache.hits").inc()
                annotate(cache_hit=True)
                return cached
            registry.counter("analysis.cache.misses").inc()
            annotate(cache_hit=False)
        registry.counter("sched.invocations").inc()
        with registry.timer("sched.seconds").time():
            if seed is not None and getattr(
                self._backend, "supports_warm_start", False
            ):
                bounds = self._backend.analyze(jobset, seed=seed)
            else:
                bounds = self._backend.analyze(jobset)
        registry.histogram("sched.sweeps").observe(bounds.sweeps)
        annotate(sweeps=bounds.sweeps)
        if key is not None:
            fast.cache.put(key, bounds)
            registry.gauge("analysis.cache.size").set(len(fast.cache))
        return bounds

    def _base_jobset(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
    ) -> JobSet:
        """Unroll ``T'`` with normal-state bounds (Algorithm 1 lines 2–9)."""
        bounds: Dict[str, Tuple[float, float]] = {}
        for task in hardened.applications.all_tasks:
            bounds[task.name] = hardened.nominal_bounds(task.name)
        for passive in hardened.passive_tasks:
            bounds[passive] = (0.0, 0.0)
        comm = self._comm if self._comm is not None else default_comm(architecture)
        priorities = assign_priorities(hardened.applications)
        return unroll(
            hardened.applications,
            mapping,
            architecture,
            comm=comm,
            priorities=priorities,
            bounds=bounds,
            policy=self._policy,
            bus_contention=self._bus_contention,
        )

    def _enumerate_transitions(
        self,
        hardened: HardenedSystem,
        base: JobSet,
        normal: ScheduleBounds,
    ):
        """Yield ``(trigger, instance, (minStart_v, maxFinish_v))`` tuples."""
        for trigger in hardened.triggers():
            if self._granularity == "task":
                min_start = min(
                    normal.task_min_start(anchor) for anchor in trigger.start_anchors
                )
                max_finish = normal.task_max_finish(trigger.finish_anchor)
                yield trigger, None, (min_start, max_finish)
            else:
                instances = sorted(
                    job.instance
                    for job in base.analyzed_jobs_of_task(trigger.finish_anchor)
                )
                for instance in instances:
                    min_start = min(
                        normal.job_bounds((anchor, instance)).min_start
                        for anchor in trigger.start_anchors
                    )
                    max_finish = normal.job_bounds(
                        (trigger.finish_anchor, instance)
                    ).max_finish
                    yield trigger, instance, (min_start, max_finish)

    def _transition_overrides(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
        base: JobSet,
        normal: ScheduleBounds,
        trigger: CriticalTrigger,
        instance: Optional[int],
        window: Tuple[float, float],
        dropped_set: FrozenSet[str],
    ) -> Dict[JobId, Tuple[float, float]]:
        """Bounds overrides of one outer-loop iteration (lines 12–30).

        Building the override map separately from the ``sched()`` call
        lets the fast path prune dominated transitions before paying for
        the back-end run.
        """
        min_start_v, max_finish_v = window
        overrides: Dict[JobId, Tuple[float, float]] = {}

        trigger_jobs = self._trigger_overrides(
            hardened, architecture, mapping, base, trigger, instance, overrides
        )

        for job in base.analyzed_jobs:
            if job.job_id in trigger_jobs:
                continue
            job_bounds = normal.bounds_at(job.index)
            if job_bounds.max_finish < min_start_v:
                # Normal state: keep nominal bounds (lines 13–17; passive
                # copies are already [0, 0] in the base job set).
                continue
            if job.graph_name in dropped_set:
                if job_bounds.min_start > max_finish_v:
                    overrides[job.job_id] = (0.0, 0.0)  # certainly dropped
                else:  # transition mode: may run or be dropped
                    low = 0.0 if self._zero_dropped_bcet else job.bcet
                    overrides[job.job_id] = (min(low, job.wcet), job.wcet)
            else:
                task_name = job.task_name
                if hardened.is_time_redundant(task_name):
                    inflation = hardened.critical_inflation(task_name)
                    overrides[job.job_id] = (job.bcet, job.wcet * inflation)
                elif hardened.is_passive(task_name):
                    overrides[job.job_id] = (
                        0.0,
                        self._activated_wcet(hardened, architecture, mapping, task_name),
                    )
        return overrides

    def _trigger_overrides(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
        base: JobSet,
        trigger: CriticalTrigger,
        instance: Optional[int],
        overrides: Dict[JobId, Tuple[float, float]],
    ) -> FrozenSet[JobId]:
        """Apply the triggering task's critical bounds; return its job ids."""
        handled: List[JobId] = []
        if trigger.kind is not HardeningKind.PASSIVE:  # time-redundant trigger
            inflation = hardened.critical_inflation(trigger.primary)
            for job in base.analyzed_jobs_of_task(trigger.primary):
                if instance is not None and job.instance != instance:
                    continue
                overrides[job.job_id] = (job.bcet, job.wcet * inflation)
                handled.append(job.job_id)
        else:  # passive replication: the requested copies become live
            group = hardened.replica_groups[trigger.primary]
            for name in group:
                if name not in hardened.passive_tasks:
                    continue
                for job in base.analyzed_jobs_of_task(name):
                    if instance is not None and job.instance != instance:
                        continue
                    overrides[job.job_id] = (
                        0.0,
                        self._activated_wcet(hardened, architecture, mapping, name),
                    )
                    handled.append(job.job_id)
        return frozenset(handled)

    def _activated_wcet(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
        task_name: str,
    ) -> float:
        """Processor-scaled WCET of a passive copy when it is requested."""
        task = hardened.applications.task(task_name)
        processor = architecture.processor(mapping[task_name])
        return processor.scale_time(task.wcet)
