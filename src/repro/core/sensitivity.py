"""Sensitivity analysis of a hardened, mapped design.

Two classic questions a designer asks once a design point is feasible:

* **how much slower can the tasks get** before a deadline breaks —
  :func:`wcet_scaling_margin` binary-searches the largest uniform
  execution-time scale factor that keeps every surviving application
  schedulable under the mixed-criticality analysis;
* **how close are the deadlines** — :func:`deadline_margins` reports the
  per-application ``deadline / WCRT`` ratio (1.0 = critical).

Both operate on the *source* applications plus a hardening plan, so the
scaled probes re-apply hardening consistently (detection and voting
overheads scale together with the execution times).
"""

from dataclasses import replace
from typing import Dict, Iterable, Optional, Tuple

from repro.core.analysis import MixedCriticalityAnalysis
from repro.errors import AnalysisError
from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping


def scale_execution_times(
    applications: ApplicationSet, factor: float
) -> ApplicationSet:
    """Scale every task's bcet/wcet and overheads by ``factor``.

    Periods and deadlines are untouched — this models uniformly slower
    code (or a slower silicon corner), the standard sensitivity axis.
    """
    if factor <= 0:
        raise AnalysisError(f"scale factor must be positive, got {factor}")
    scaled_graphs = []
    for graph in applications.graphs:
        scaled_tasks = [
            replace(
                task,
                bcet=task.bcet * factor,
                wcet=task.wcet * factor,
                detection_overhead=task.detection_overhead * factor,
                voting_overhead=task.voting_overhead * factor,
            )
            for task in graph.tasks
        ]
        scaled_graphs.append(graph.derive(tasks=scaled_tasks))
    return ApplicationSet(scaled_graphs)


def _schedulable_at(
    applications: ApplicationSet,
    plan: HardeningPlan,
    architecture: Architecture,
    mapping: Mapping,
    dropped: Tuple[str, ...],
    analysis: MixedCriticalityAnalysis,
    factor: float,
) -> bool:
    hardened = harden(scale_execution_times(applications, factor), plan)
    result = analysis.analyze(hardened, architecture, mapping, dropped)
    return result.schedulable


def wcet_scaling_margin(
    applications: ApplicationSet,
    plan: HardeningPlan,
    architecture: Architecture,
    mapping: Mapping,
    dropped: Iterable[str] = (),
    analysis: Optional[MixedCriticalityAnalysis] = None,
    upper: float = 8.0,
    tolerance: float = 0.01,
) -> float:
    """Largest uniform execution-time scale factor that stays schedulable.

    Returns 0.0 when the design is infeasible as given (factor 1.0).
    The search assumes schedulability is monotone in the factor — true
    for this analysis, whose bounds are monotone in execution times.
    """
    if tolerance <= 0:
        raise AnalysisError("tolerance must be positive")
    analysis = analysis or MixedCriticalityAnalysis(granularity="task")
    dropped = tuple(dropped)

    if not _schedulable_at(
        applications, plan, architecture, mapping, dropped, analysis, 1.0
    ):
        return 0.0
    low = 1.0
    high = upper
    if _schedulable_at(
        applications, plan, architecture, mapping, dropped, analysis, high
    ):
        return high  # saturated: report the search ceiling
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if _schedulable_at(
            applications, plan, architecture, mapping, dropped, analysis, mid
        ):
            low = mid
        else:
            high = mid
    return low


def deadline_margins(
    applications: ApplicationSet,
    plan: HardeningPlan,
    architecture: Architecture,
    mapping: Mapping,
    dropped: Iterable[str] = (),
    analysis: Optional[MixedCriticalityAnalysis] = None,
) -> Dict[str, float]:
    """``deadline / WCRT`` per application (> 1 means headroom).

    Dropped applications are assessed in the normal state only, like the
    feasibility check.
    """
    analysis = analysis or MixedCriticalityAnalysis(granularity="task")
    hardened = harden(applications, plan)
    result = analysis.analyze(hardened, architecture, mapping, tuple(dropped))
    margins: Dict[str, float] = {}
    for name, verdict in result.verdicts.items():
        if verdict.wcrt <= 0:
            margins[name] = float("inf")
        else:
            margins[name] = verdict.deadline / verdict.wcrt
    return margins
