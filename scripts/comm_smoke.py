"""End-to-end smoke test of the comm subsystem (comm-smoke CI job).

Three contracts, all load-bearing for the comm backends:

1. **Flat byte-identity** — on every built-in suite, analyzing with the
   default comm model, an explicit ``flat`` backend, and a hand-built
   legacy :class:`CommModel` produces byte-identical result digests.
   The ``flat`` backend *is* the legacy fabric; any drift is a bug.
2. **Seeded verify campaign** — a full verification campaign on the
   comm-dominated synthetic family (shared-bus fabric, ARQ budget,
   round-robin scatter mapping) reports zero violations of the extended
   lattice (``sim <= Proposed``, ``flat <= contended``, ARQ
   ``k``-monotonicity) and actually exercises message-loss scenarios.
3. **Backend-selection UX** — an unknown ``--comm-backend`` name fails
   with an error listing every registered backend, matching the
   ``--method`` behaviour.

Run from the repository root:

    PYTHONPATH=src python scripts/comm_smoke.py
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.benchgen.tgff import comm_dominated_problem  # noqa: E402
from repro.comm import COMM_BACKENDS, make_comm  # noqa: E402
from repro.core.factory import make_analysis  # noqa: E402
from repro.errors import AnalysisError  # noqa: E402
from repro.model.serialization import SystemBundle  # noqa: E402
from repro.sched.comm import CommModel  # noqa: E402
from repro.suites import benchmark_names, get_benchmark  # noqa: E402
from repro.verify.campaign import (  # noqa: E402
    CampaignConfig,
    run_campaign,
    scatter_state,
    state_from_bundle,
)
from repro.verify.oracles import result_digest  # noqa: E402


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def digest(state, comm) -> str:
    analysis = make_analysis(comm=comm)
    result = analysis.analyze(
        state.hardened(), state.architecture, state.mapping, state.dropped
    )
    return json.dumps(result_digest(result), sort_keys=True)


def flat_identity_sweep() -> None:
    names = benchmark_names()
    check(len(names) >= 5, f"found {len(names)} built-in suites: {names}")
    for name in names:
        problem = get_benchmark(name).problem
        bundle = SystemBundle(
            applications=problem.applications,
            architecture=problem.architecture,
            mapping=None,
            plan=None,
        )
        state = state_from_bundle(bundle, seed=0)
        reference = digest(state, None)
        explicit = digest(state, "flat")
        legacy = digest(state, CommModel(state.architecture.interconnect))
        check(
            reference == explicit == legacy,
            f"{name}: flat backend byte-identical to the legacy model",
        )


def comm_dominated_campaign() -> None:
    problem = comm_dominated_problem()
    bundle = SystemBundle(
        applications=problem.applications,
        architecture=problem.architecture,
        mapping=None,
        plan=None,
    )
    state = scatter_state(state_from_bundle(bundle, seed=7))
    report = run_campaign(
        state, CampaignConfig(budget=120, seed=7), label="comm-dominated"
    )
    check(report.ok, "comm-dominated campaign reports zero violations")
    for oracle in ("flat-le-contended", "arq-monotone"):
        entry = report.oracles.get(oracle, {})
        check(
            entry.get("checks", 0) >= 1 and entry.get("violations", 1) == 0,
            f"extended lattice oracle {oracle} ran clean",
        )
    message_runs = sum(
        1 for s in report.scenarios if s["origin"] == "directed-message"
    )
    check(message_runs > 0, f"{message_runs} message-loss scenarios simulated")


def backend_error_ux() -> None:
    try:
        make_comm("token-ring")
    except AnalysisError as error:
        text = str(error)
        check(
            all(name in text for name in COMM_BACKENDS),
            f"unknown-backend error lists every backend: {text}",
        )
    else:
        check(False, "make_comm('token-ring') should have raised")

    from repro.cli import build_parser

    parser = build_parser()
    try:
        parser.parse_args(
            ["analyze", "--suite", "cruise", "--comm-backend", "token-ring"]
        )
    except SystemExit as exit_error:
        check(
            exit_error.code != 0,
            "--comm-backend rejects unknown names via argparse choices",
        )
    else:
        check(False, "--comm-backend should reject unknown names")


def main() -> None:
    flat_identity_sweep()
    comm_dominated_campaign()
    backend_error_ux()
    print("comm smoke: all checks passed")


if __name__ == "__main__":
    main()
