"""End-to-end smoke test of `repro serve` (used by the serve-smoke CI job).

Drives a real server subprocess through the full surface:

1. health + metrics endpoints;
2. served analyze byte-identical to `repro.api.analyze` on every
   built-in suite;
3. a 100-request concurrent mixed load (analyze/simulate, with
   duplicates): zero errors, dedup hits observed, queue depth bounded;
4. explore job lifecycle: submit, poll, cancel;
5. SIGKILL the server mid-exploration, restart it on the same state
   dir, and assert the job resumes from its checkpoint and finishes
   with the same Pareto front as an uninterrupted run.

Run from the repository root:

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import analyze, load  # noqa: E402
from repro.model.mapping import Mapping  # noqa: E402
from repro.model.serialization import SystemBundle  # noqa: E402
from repro.serve.client import ServeClient, ServeError  # noqa: E402
from repro.serve.encoding import (  # noqa: E402
    analysis_result_to_dict,
    bundle_to_payload,
    canonical_bytes,
)
from repro.suites import benchmark_names  # noqa: E402

QUEUE_SIZE = 64


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(port: int, state_dir: str) -> subprocess.Popen:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--state-dir", state_dir,
            "--workers", "4",
            "--queue-size", str(QUEUE_SIZE),
        ],
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=300.0)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return process
        except ServeError:
            if process.poll() is not None:
                raise SystemExit("server process died during startup")
            time.sleep(0.2)
    raise SystemExit("server did not become healthy in 30s")


def mapped_suite(name: str) -> SystemBundle:
    bundle = load(name)
    processors = [p.name for p in bundle.architecture.processors]
    tasks = [
        task.name
        for graph in bundle.applications.graphs
        for task in graph.tasks
    ]
    mapping = Mapping(
        {task: processors[i % len(processors)] for i, task in enumerate(tasks)}
    )
    return SystemBundle(bundle.applications, bundle.architecture, mapping, None)


def check_byte_identity(client: ServeClient) -> None:
    for name in benchmark_names():
        mapped = mapped_suite(name)
        served = client.analyze_raw(mapped)
        direct = canonical_bytes(analysis_result_to_dict(analyze(mapped)))
        assert served == direct, f"served {name} differs from repro.api.analyze"
    print(f"ok: byte-identical to the facade on {len(benchmark_names())} suites")


def check_load(client: ServeClient) -> None:
    cruise = bundle_to_payload(mapped_suite("cruise"))
    dt_med = bundle_to_payload(mapped_suite("dt-med"))

    def one(i: int):
        kind = i % 4
        if kind == 0:
            # Identical requests: must coalesce through the dedup layer.
            return client.analyze_raw(cruise)
        if kind == 1:
            return client.analyze_raw(cruise, dropped=["info", "log"])
        if kind == 2:
            return client.analyze_raw(dt_med)
        return client.simulate(cruise, profiles=5, seed=i % 3)

    errors = []
    max_depth = 0

    def guarded(i: int):
        try:
            return one(i)
        except Exception as error:  # noqa: BLE001 — tallied below
            errors.append(f"request {i}: {type(error).__name__}: {error}")
            return None

    with ThreadPoolExecutor(max_workers=32) as executor:
        futures = [executor.submit(guarded, i) for i in range(100)]
        while not all(f.done() for f in futures):
            max_depth = max(max_depth, client.healthz()["queue_depth"])
            time.sleep(0.02)
        results = [f.result() for f in futures]

    assert not errors, "load errors:\n" + "\n".join(errors[:10])
    assert all(r is not None for r in results)
    # Identical requests returned identical bytes.
    group = [r for i, r in enumerate(results) if i % 4 == 0]
    assert all(r == group[0] for r in group), "deduped responses differ"
    report = client.metrics()
    dedup = report["metrics"]["counters"].get("serve.dedup.hits", 0)
    assert dedup > 0, "no dedup hits under concurrent identical load"
    assert max_depth <= QUEUE_SIZE, f"queue depth {max_depth} exceeded bound"
    cache = report["schedule_cache"]
    print(
        f"ok: 100 concurrent requests, 0 errors, dedup hits {dedup}, "
        f"max queue depth {max_depth}, cache hit rate "
        f"{cache['hit_rate']:.2f}"
    )


def check_job_cancel(client: ServeClient) -> None:
    mapped = bundle_to_payload(mapped_suite("cruise"))
    stub = client.explore(mapped, generations=500, population=16, seed=2)
    record = client.cancel(stub["id"])
    assert record["cancel_requested"] is True
    final = client.wait_job(stub["id"], timeout=120.0)
    assert final["status"] == "cancelled", final["status"]
    print("ok: explore job cancelled cooperatively")


def check_kill_resume(port: int, state_dir: str, process: subprocess.Popen):
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=300.0)
    mapped = bundle_to_payload(mapped_suite("cruise"))
    params = dict(generations=40, population=16, seed=7, checkpoint_every=2)
    stub = client.explore(mapped, **params)
    job_id = stub["id"]

    # Wait for a committed checkpoint, then kill without ceremony.
    ckpt_dir = Path(state_dir) / job_id / "ckpt"
    deadline = time.monotonic() + 120.0
    while not list(ckpt_dir.glob("checkpoint-*.json")):
        assert time.monotonic() < deadline, "no checkpoint appeared"
        time.sleep(0.1)
    os.kill(process.pid, signal.SIGKILL)
    process.wait()
    record = json.loads((Path(state_dir) / job_id / "job.json").read_text())
    assert record["status"] in ("pending", "running"), record["status"]
    print(f"ok: killed mid-explore (job {job_id} was {record['status']})")

    process = start_server(port, state_dir)
    try:
        final = client.wait_job(job_id, timeout=300.0)
        assert final["status"] == "done", final
        assert final["restarts"] >= 1, "job did not go through recovery"
        front = [
            (p["power"], p["service"], tuple(p["dropped"]))
            for p in final["result"]["pareto"]
        ]
        import repro

        source = mapped_suite("cruise")
        reference = repro.explore(
            source,
            generations=params["generations"],
            population=params["population"],
            seed=params["seed"],
        )
        expected = [
            (p.power, p.service, tuple(p.dropped)) for p in reference.pareto
        ]
        assert front == expected, "resumed front differs from reference"
        print(
            f"ok: job resumed after SIGKILL and matches the uninterrupted "
            f"run ({len(front)} Pareto points)"
        )
    finally:
        process.terminate()
        process.wait(timeout=10)


def main() -> int:
    port = free_port()
    state_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    process = start_server(port, state_dir)
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=300.0)
    try:
        health = client.healthz()
        assert health["status"] == "ok"
        print(f"ok: healthy on port {port}")
        check_byte_identity(client)
        check_load(client)
        check_job_cancel(client)
    except Exception:
        process.terminate()
        process.wait(timeout=10)
        raise
    # check_kill_resume kills and restarts the server itself.
    check_kill_resume(port, state_dir, process)
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
