"""End-to-end smoke test of `repro serve` (used by the serve-smoke CI job).

Drives a real server subprocess through the full surface:

1. health + metrics endpoints;
2. served analyze byte-identical to `repro.api.analyze` on every
   built-in suite;
3. a 100-request concurrent mixed load (analyze/simulate, with
   duplicates): zero errors, dedup hits observed, queue depth bounded;
4. explore job lifecycle: submit, poll, cancel;
5. SIGKILL the server mid-exploration, restart it on the same state
   dir, and assert the job resumes from its checkpoint and finishes
   with the same Pareto front as an uninterrupted run;
6. SIGTERM the server mid-exploration and assert the graceful path:
   exit code 0, the job parked resumable, and the restarted server
   finishing it identically to an uninterrupted run.

Run from the repository root:

    PYTHONPATH=src python scripts/serve_smoke.py

``--soak SECONDS`` switches to a sustained-load soak instead: N client
threads hammer the server for the given duration, latencies stream
through a P^2 histogram, and a ``BENCH_serve.json`` report (throughput
+ p50/p95/p99) is written when ``REPRO_BENCH_DIR`` or ``--bench-dir``
names a directory.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import analyze, load  # noqa: E402
from repro.model.mapping import Mapping  # noqa: E402
from repro.model.serialization import SystemBundle  # noqa: E402
from repro.obs.bench import write_bench_report  # noqa: E402
from repro.obs.metrics import metrics  # noqa: E402
from repro.serve.client import (  # noqa: E402
    RetryPolicy,
    ServeClient,
    ServeError,
)
from repro.serve.encoding import (  # noqa: E402
    analysis_result_to_dict,
    bundle_to_payload,
    canonical_bytes,
)
from repro.suites import benchmark_names  # noqa: E402

QUEUE_SIZE = 64


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(port: int, state_dir: str) -> subprocess.Popen:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--state-dir", state_dir,
            "--workers", "4",
            "--queue-size", str(QUEUE_SIZE),
        ],
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=300.0)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return process
        except ServeError:
            if process.poll() is not None:
                raise SystemExit("server process died during startup")
            time.sleep(0.2)
    raise SystemExit("server did not become healthy in 30s")


def mapped_suite(name: str) -> SystemBundle:
    bundle = load(name)
    processors = [p.name for p in bundle.architecture.processors]
    tasks = [
        task.name
        for graph in bundle.applications.graphs
        for task in graph.tasks
    ]
    mapping = Mapping(
        {task: processors[i % len(processors)] for i, task in enumerate(tasks)}
    )
    return SystemBundle(bundle.applications, bundle.architecture, mapping, None)


def check_byte_identity(client: ServeClient) -> None:
    for name in benchmark_names():
        mapped = mapped_suite(name)
        served = client.analyze_raw(mapped)
        direct = canonical_bytes(analysis_result_to_dict(analyze(mapped)))
        assert served == direct, f"served {name} differs from repro.api.analyze"
    print(f"ok: byte-identical to the facade on {len(benchmark_names())} suites")


def check_load(client: ServeClient) -> None:
    cruise = bundle_to_payload(mapped_suite("cruise"))
    dt_med = bundle_to_payload(mapped_suite("dt-med"))

    def one(i: int):
        kind = i % 4
        if kind == 0:
            # Identical requests: must coalesce through the dedup layer.
            return client.analyze_raw(cruise)
        if kind == 1:
            return client.analyze_raw(cruise, dropped=["info", "log"])
        if kind == 2:
            return client.analyze_raw(dt_med)
        return client.simulate(cruise, profiles=5, seed=i % 3)

    errors = []
    max_depth = 0

    def guarded(i: int):
        try:
            return one(i)
        except Exception as error:  # noqa: BLE001 — tallied below
            errors.append(f"request {i}: {type(error).__name__}: {error}")
            return None

    with ThreadPoolExecutor(max_workers=32) as executor:
        futures = [executor.submit(guarded, i) for i in range(100)]
        while not all(f.done() for f in futures):
            max_depth = max(max_depth, client.healthz()["queue_depth"])
            time.sleep(0.02)
        results = [f.result() for f in futures]

    assert not errors, "load errors:\n" + "\n".join(errors[:10])
    assert all(r is not None for r in results)
    # Identical requests returned identical bytes.
    group = [r for i, r in enumerate(results) if i % 4 == 0]
    assert all(r == group[0] for r in group), "deduped responses differ"
    report = client.metrics()
    dedup = report["metrics"]["counters"].get("serve.dedup.hits", 0)
    assert dedup > 0, "no dedup hits under concurrent identical load"
    assert max_depth <= QUEUE_SIZE, f"queue depth {max_depth} exceeded bound"
    cache = report["schedule_cache"]
    print(
        f"ok: 100 concurrent requests, 0 errors, dedup hits {dedup}, "
        f"max queue depth {max_depth}, cache hit rate "
        f"{cache['hit_rate']:.2f}"
    )


def check_job_cancel(client: ServeClient) -> None:
    mapped = bundle_to_payload(mapped_suite("cruise"))
    stub = client.explore(mapped, generations=500, population=16, seed=2)
    record = client.cancel(stub["id"])
    assert record["cancel_requested"] is True
    final = client.wait_job(stub["id"], timeout=120.0)
    assert final["status"] == "cancelled", final["status"]
    print("ok: explore job cancelled cooperatively")


_REFERENCE_FRONTS = {}


def reference_front(params: dict):
    """The uninterrupted cruise exploration front for ``params``."""
    key = tuple(sorted(params.items()))
    if key not in _REFERENCE_FRONTS:
        import repro

        result = repro.explore(
            mapped_suite("cruise"),
            generations=params["generations"],
            population=params["population"],
            seed=params["seed"],
        )
        _REFERENCE_FRONTS[key] = [
            (p.power, p.service, tuple(p.dropped)) for p in result.pareto
        ]
    return _REFERENCE_FRONTS[key]


def check_kill_resume(port: int, state_dir: str, process: subprocess.Popen):
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=300.0)
    mapped = bundle_to_payload(mapped_suite("cruise"))
    params = dict(generations=40, population=16, seed=7, checkpoint_every=2)
    stub = client.explore(mapped, **params)
    job_id = stub["id"]

    # Wait for a committed checkpoint, then kill without ceremony.
    ckpt_dir = Path(state_dir) / job_id / "ckpt"
    deadline = time.monotonic() + 120.0
    while not list(ckpt_dir.glob("checkpoint-*.json")):
        assert time.monotonic() < deadline, "no checkpoint appeared"
        time.sleep(0.1)
    os.kill(process.pid, signal.SIGKILL)
    process.wait()
    record = json.loads((Path(state_dir) / job_id / "job.json").read_text())
    assert record["status"] in ("pending", "running"), record["status"]
    print(f"ok: killed mid-explore (job {job_id} was {record['status']})")

    process = start_server(port, state_dir)
    try:
        final = client.wait_job(job_id, timeout=300.0)
        assert final["status"] == "done", final
        assert final["restarts"] >= 1, "job did not go through recovery"
        front = [
            (p["power"], p["service"], tuple(p["dropped"]))
            for p in final["result"]["pareto"]
        ]
        expected = reference_front(params)
        assert front == expected, "resumed front differs from reference"
        print(
            f"ok: job resumed after SIGKILL and matches the uninterrupted "
            f"run ({len(front)} Pareto points)"
        )
    finally:
        process.terminate()
        process.wait(timeout=30)


def check_sigterm_drain(port: int, state_dir: str) -> None:
    """SIGTERM mid-explore: clean exit 0, job parked, resume identical."""
    process = start_server(port, state_dir)
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=300.0)
    mapped = bundle_to_payload(mapped_suite("cruise"))
    params = dict(generations=40, population=16, seed=7, checkpoint_every=2)
    stub = client.explore(mapped, **params)
    job_id = stub["id"]

    ckpt_dir = Path(state_dir) / job_id / "ckpt"
    deadline = time.monotonic() + 120.0
    while not list(ckpt_dir.glob("checkpoint-*.json")):
        assert time.monotonic() < deadline, "no checkpoint appeared"
        time.sleep(0.1)
    process.send_signal(signal.SIGTERM)
    code = process.wait(timeout=60)
    assert code == 0, f"graceful drain exited {code}"
    record = json.loads((Path(state_dir) / job_id / "job.json").read_text())
    assert record["status"] == "pending", record["status"]
    print(f"ok: SIGTERM drained to exit 0 (job {job_id} parked as pending)")

    process = start_server(port, state_dir)
    try:
        final = client.wait_job(job_id, timeout=300.0)
        assert final["status"] == "done", final
        assert final["restarts"] >= 1, "job did not go through recovery"
        front = [
            (p["power"], p["service"], tuple(p["dropped"]))
            for p in final["result"]["pareto"]
        ]
        assert front == reference_front(params), (
            "drained-and-resumed front differs from reference"
        )
        print(
            f"ok: parked job resumed after drain and matches the "
            f"uninterrupted run ({len(front)} Pareto points)"
        )
    finally:
        process.terminate()
        assert process.wait(timeout=60) == 0, "idle drain exited nonzero"


def run_soak(args) -> int:
    """Sustained mixed load; emits BENCH_serve.json when configured."""
    port = free_port()
    state_dir = tempfile.mkdtemp(prefix="repro-serve-soak-")
    process = start_server(port, state_dir)
    url = f"http://127.0.0.1:{port}"
    cruise = bundle_to_payload(mapped_suite("cruise"))
    dt_med = bundle_to_payload(mapped_suite("dt-med"))
    latency = metrics().histogram("bench.serve.request_seconds")
    # Per-class percentiles: each soak client carries one criticality
    # class end to end, so the report shows what each class experienced.
    classes = ("critical", "standard", "best-effort")
    class_latency = {
        cls: metrics().histogram(
            f"bench.serve.request_seconds.{cls.replace('-', '_')}"
        )
        for cls in classes
    }
    stop = threading.Event()
    lock = threading.Lock()
    counts = {"requests": 0, "errors": 0}
    failures = []

    def worker(index: int) -> None:
        criticality = classes[index % len(classes)]
        client = ServeClient(
            url,
            timeout=120.0,
            retry=RetryPolicy(retries=4, seed=index),
            criticality=criticality,
            client_id=f"soak-{index}",
        )
        i = 0
        try:
            while not stop.is_set():
                kind = (index + i) % 3
                i += 1
                begin = time.perf_counter()
                try:
                    if kind == 0:
                        client.analyze_raw(cruise)
                    elif kind == 1:
                        client.analyze_raw(cruise, dropped=["info", "log"])
                    else:
                        client.analyze_raw(dt_med)
                except ServeError as error:
                    with lock:
                        counts["errors"] += 1
                        if len(failures) < 5:
                            failures.append(str(error))
                else:
                    elapsed_req = time.perf_counter() - begin
                    latency.observe(elapsed_req)
                    class_latency[criticality].observe(elapsed_req)
                    with lock:
                        counts["requests"] += 1
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"soak-{i}")
        for i in range(args.soak_clients)
    ]
    begin = time.monotonic()
    for thread in threads:
        thread.start()
    time.sleep(args.soak)
    stop.set()
    for thread in threads:
        thread.join(timeout=150.0)
    elapsed = time.monotonic() - begin
    process.terminate()
    assert process.wait(timeout=60) == 0, "soak server drain exited nonzero"

    quantiles = latency.quantiles()
    throughput = counts["requests"] / elapsed if elapsed else 0.0
    payload = {
        "duration_seconds": round(elapsed, 3),
        "clients": args.soak_clients,
        "requests": counts["requests"],
        "errors": counts["errors"],
        "throughput_rps": round(throughput, 3),
        "latency_seconds": {
            "mean": round(latency.mean, 6),
            "max": latency.max,
            **quantiles,
        },
        "latency_seconds_by_class": {
            cls: {
                "count": hist.count,
                "mean": round(hist.mean, 6) if hist.count else None,
                **hist.quantiles(),
            }
            for cls, hist in class_latency.items()
        },
    }
    path = write_bench_report("serve", payload, out_dir=args.bench_dir)

    def fmt(value):
        return f"{value * 1000:.1f}ms" if value is not None else "n/a"

    print(
        f"soak: {counts['requests']} requests in {elapsed:.1f}s "
        f"({throughput:.1f} rps, {args.soak_clients} clients), "
        f"p50={fmt(quantiles['p50'])} p95={fmt(quantiles['p95'])} "
        f"p99={fmt(quantiles['p99'])}"
    )
    if path:
        print(f"wrote {path}")
    assert counts["errors"] == 0, "soak errors:\n" + "\n".join(failures)
    print("serve soak: passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serve smoke test / sustained-load soak"
    )
    parser.add_argument(
        "--soak", type=float, default=0.0,
        help="run a sustained-load soak for N seconds instead of the "
        "smoke checks",
    )
    parser.add_argument(
        "--soak-clients", type=int, default=8,
        help="concurrent client threads during the soak",
    )
    parser.add_argument(
        "--bench-dir", default=None,
        help="directory for BENCH_serve.json (default: $REPRO_BENCH_DIR)",
    )
    args = parser.parse_args(argv)
    if args.soak:
        return run_soak(args)

    port = free_port()
    state_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    process = start_server(port, state_dir)
    client = ServeClient(f"http://127.0.0.1:{port}", timeout=300.0)
    try:
        health = client.healthz()
        assert health["status"] == "ok"
        print(f"ok: healthy on port {port}")
        check_byte_identity(client)
        check_load(client)
        check_job_cancel(client)
    except Exception:
        process.terminate()
        process.wait(timeout=10)
        raise
    # check_kill_resume kills and restarts the server itself.
    check_kill_resume(port, state_dir, process)
    check_sigterm_drain(port, state_dir)
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
