"""Standalone chaos campaign against the serving tier (CI chaos-smoke).

Thin wrapper over :func:`repro.serve.chaos.run_chaos` — kills workers
mid-request, breaks connections, drains gracefully, and asserts zero
wrong answers, a resumable exploration job, and a re-warmed disk cache.

Run from the repository root:

    PYTHONPATH=src python scripts/serve_chaos.py --seed 0 --duration 20

Exit code 0 iff every campaign check passed; ``--report out.json``
writes the machine-readable verdict.  Same flags as ``repro chaos``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["chaos", *sys.argv[1:]]))
