"""End-to-end smoke test of island-model exploration (islands-smoke CI job).

Exercises the :mod:`repro.dse.islands` determinism contract on a real
multi-process run:

1. the multi-process island front is byte-identical to the inline
   serial reference of the same ``ExploreRequest``;
2. SIGKILL one island worker mid-epoch: the coordinator's retry resumes
   the island from its committed checkpoints and the final front is
   byte-identical to the uninterrupted run;
3. kill the coordinator between barriers (emulated by running the shard
   helpers directly) and resume: byte-identical again;
4. the serve fleet mode — islands fanned out as durable ``/v1/shard``
   jobs — produces the same bytes, and re-running the same request
   re-attaches to the finished jobs instead of recomputing.

Run from the repository root:

    PYTHONPATH=src python scripts/islands_smoke.py
"""

import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dse import ExploreRequest  # noqa: E402
from repro.dse.islands import (  # noqa: E402
    has_island_state,
    run_explore,
    run_shard_epoch,
    run_shard_migration,
)
from repro.serve.encoding import exploration_result_to_dict  # noqa: E402

SUITE = "cruise"
ISLANDS = 4


def request(state_dir=None, **overrides):
    options = dict(
        generations=6,
        population=16,
        seed=3,
        islands=ISLANDS,
        migration_every=3,
        migrants=1,
    )
    options.update(overrides)
    if state_dir is not None:
        options["checkpoint_dir"] = str(state_dir)
    return ExploreRequest.from_options(SUITE, **options)


def canonical(result) -> str:
    return json.dumps(exploration_result_to_dict(result), sort_keys=True)


def check_process_matches_inline(reference: str) -> None:
    forked = run_explore(request(), execution="process")
    assert canonical(forked) == reference, (
        "multi-process front differs from the inline serial reference"
    )
    print(f"ok: {ISLANDS}-island process run byte-identical to inline")


def check_sigkilled_island_self_heals(reference: str, tmp: Path) -> None:
    os.environ["REPRO_ISLANDS_FAULT"] = "1:2"  # SIGKILL island 1 at gen 2
    try:
        healed = run_explore(
            request(tmp / "fault-state"), execution="process"
        )
    finally:
        os.environ.pop("REPRO_ISLANDS_FAULT", None)
    assert canonical(healed) == reference, (
        "front after SIGKILL + worker retry differs from uninterrupted run"
    )
    print("ok: SIGKILLed island self-healed to the identical front")


def check_killed_coordinator_resumes(reference: str, tmp: Path) -> None:
    state = tmp / "resume-state"
    partial = request(state)
    # Emulate a coordinator killed right after the first barrier: the
    # epoch checkpoints and the migration rewrite are on disk, the rest
    # of the run is not.
    for index in range(partial.topology.islands):
        run_shard_epoch(partial, state, index, 3)
    run_shard_migration(partial, state, 3)
    assert has_island_state(state), "expected partial island state on disk"

    resumed = run_explore(request(state, resume=True), execution="inline")
    assert canonical(resumed) == reference, (
        "resumed front differs from the uninterrupted run"
    )
    print("ok: killed-coordinator resume reached the identical front")


def check_fleet_matches_inline(reference: str, tmp: Path) -> None:
    from repro.serve import ReproServer, ServeConfig

    server = ReproServer(
        ServeConfig(
            port=0, workers=2, queue_size=16,
            state_dir=str(tmp / "serve-state"),
        )
    )
    server.start()
    try:
        first = run_explore(request(), fleet=server.url)
        assert canonical(first) == reference, (
            "fleet-mode front differs from the inline run"
        )
        # Same request again: the durable shard jobs are already done,
        # so the rerun re-attaches instead of recomputing.
        again = run_explore(request(), fleet=server.url)
        assert canonical(again) == reference, "fleet re-run diverged"
    finally:
        server.close()
    print("ok: fleet mode byte-identical, idempotent re-attach")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="islands-smoke-") as tmpdir:
        tmp = Path(tmpdir)
        reference = canonical(run_explore(request(), execution="inline"))
        check_process_matches_inline(reference)
        check_sigkilled_island_self_heals(reference, tmp)
        check_killed_coordinator_resumes(reference, tmp)
        check_fleet_matches_inline(reference, tmp)
    print("islands smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
