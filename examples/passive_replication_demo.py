#!/usr/bin/env python3
"""Passive replication under the microscope (paper §2.2, Figure 2(b)).

Simulates a passively replicated task with trace collection enabled and
prints the scheduler events for the fault-free run and for a run where an
active copy is corrupted: the voter detects the mismatch, requests the
passive copy, and the system transitions to the critical state.

Also shows the *average power* argument for passive replication: the
on-demand copy costs almost nothing in expectation.

Run:  python examples/passive_replication_demo.py
"""

from repro import (
    ApplicationSet,
    Channel,
    HardeningPlan,
    HardeningSpec,
    Mapping,
    PowerModel,
    Task,
    TaskGraph,
    harden,
)
from repro.model.architecture import homogeneous_architecture
from repro.sim import FaultProfile, Simulator, WorstCaseSampler


def build(spec):
    graph = TaskGraph(
        "app",
        tasks=[
            Task("src", 1.0, 2.0),
            Task("work", 3.0, 5.0, voting_overhead=0.5),
            Task("sink", 1.0, 2.0),
        ],
        channels=[Channel("src", "work", 32.0), Channel("work", "sink", 32.0)],
        period=30.0,
        reliability_target=1e-6,
    )
    apps = ApplicationSet([graph])
    return harden(apps, HardeningPlan({"work": spec}))


def show_trace(result, title):
    print(f"--- {title} ---")
    for event in result.trace:
        if event.kind in ("start", "finish", "activate", "critical", "fault"):
            where = f" on {event.processor}" if event.processor else ""
            what = f" {event.task}" if event.task else f" ({event.detail})"
            print(f"  t={event.time:6.2f}  {event.kind:>8}{what}{where}")
    response = result.graph_response_time("app")
    print(f"  response time: {response:.2f}\n")


def main():
    arch = homogeneous_architecture(3, fault_rate=1e-5)

    passive = build(HardeningSpec.passive(3, active=2))
    mapping = Mapping(
        {
            "src": "pe0",
            "work": "pe0",
            "work#r1": "pe1",
            "work#p0": "pe2",
            "work#vote": "pe0",
            "sink": "pe0",
        }
    )
    simulator = Simulator(passive, arch, mapping, collect_trace=True)

    clean = simulator.run(sampler=WorstCaseSampler())
    show_trace(clean, "fault-free: the passive copy work#p0 never runs")
    assert not clean.entered_critical_state

    faulty = simulator.run(
        profile=FaultProfile([("work", 0, 0)]), sampler=WorstCaseSampler()
    )
    show_trace(faulty, "fault in 'work': voter requests work#p0, system goes critical")
    assert faulty.entered_critical_state
    assert faulty.unsafe_events == [], "the passive copy masked the fault"

    # Average-power comparison: passive vs active triplication.
    active = build(HardeningSpec.active(3))
    active_mapping = Mapping(
        {
            "src": "pe0",
            "work": "pe0",
            "work#r1": "pe1",
            "work#r2": "pe2",
            "work#vote": "pe0",
            "sink": "pe0",
        }
    )
    model = PowerModel(arch)
    allocation = arch.processor_names
    p_active = model.expected_power(active, active_mapping, allocation)
    p_passive = model.expected_power(passive, mapping, allocation)
    print(
        f"expected power — active triplication: {p_active:.4f}, "
        f"passive (2 active + 1 on demand): {p_passive:.4f}"
    )
    print("passive replication saves average power exactly because the")
    print("third copy almost never executes (paper §2.2).")
    assert p_passive < p_active


if __name__ == "__main__":
    main()
