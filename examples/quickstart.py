#!/usr/bin/env python3
"""Quickstart: model a mixed-criticality system, harden it, and bound its
worst-case response times with the paper's Algorithm 1.

Run:  python examples/quickstart.py
"""

from repro import (
    ApplicationSet,
    Channel,
    HardeningPlan,
    HardeningSpec,
    Mapping,
    MixedCriticalityAnalysis,
    NaiveAnalysis,
    Task,
    TaskGraph,
    harden,
)
from repro.model.architecture import homogeneous_architecture


def main():
    # ------------------------------------------------------------------
    # 1. Applications: one safety-critical pipeline, one droppable one.
    # ------------------------------------------------------------------
    control = TaskGraph(
        "control",
        tasks=[
            Task("sense", bcet=1.0, wcet=2.0, detection_overhead=0.2),
            Task("plan", bcet=2.0, wcet=4.0, detection_overhead=0.4,
                 voting_overhead=0.5),
            Task("act", bcet=1.0, wcet=1.5, detection_overhead=0.1),
        ],
        channels=[Channel("sense", "plan", 64.0), Channel("plan", "act", 32.0)],
        period=20.0,
        reliability_target=1e-6,  # max unsafe executions per ms
    )
    video = TaskGraph(
        "video",
        tasks=[Task("decode", 1.0, 3.0), Task("render", 1.0, 2.0)],
        channels=[Channel("decode", "render", 128.0)],
        period=10.0,
        service_value=5.0,  # droppable, with this quality-of-service weight
    )
    apps = ApplicationSet([control, video])

    # ------------------------------------------------------------------
    # 2. Platform: three identical cores with a transient-fault rate.
    # ------------------------------------------------------------------
    arch = homogeneous_architecture(3, fault_rate=1e-5, bandwidth=1000.0)

    # ------------------------------------------------------------------
    # 3. Hardening: re-execute the sensor task, passively replicate the
    #    planner (2 active copies + 1 on-demand copy + majority voter).
    # ------------------------------------------------------------------
    plan = HardeningPlan(
        {
            "sense": HardeningSpec.reexecution(2),
            "plan": HardeningSpec.passive(3, active=2),
        }
    )
    hardened = harden(apps, plan)
    print("Hardened task set:", ", ".join(hardened.applications.all_task_names))

    # ------------------------------------------------------------------
    # 4. Mapping of the transformed task set onto the cores.
    # ------------------------------------------------------------------
    mapping = Mapping(
        {
            "sense": "pe0",
            "plan": "pe0",
            "plan#r1": "pe1",
            "plan#p0": "pe2",
            "plan#vote": "pe0",
            "act": "pe1",
            "decode": "pe2",
            "render": "pe2",
        }
    )

    # ------------------------------------------------------------------
    # 5. Analysis: Algorithm 1 vs the pessimistic Naive baseline, with
    #    "video" in the dropped set T_d.
    # ------------------------------------------------------------------
    proposed = MixedCriticalityAnalysis().analyze(
        hardened, arch, mapping, dropped=("video",)
    )
    naive = NaiveAnalysis().analyze(hardened, arch, mapping, dropped=("video",))

    print(f"\n{'application':>12} | {'normal':>8} | {'proposed':>9} | "
          f"{'naive':>8} | deadline | ok?")
    print("-" * 62)
    for name, verdict in proposed.verdicts.items():
        print(
            f"{name:>12} | {verdict.normal_wcrt:8.2f} | {verdict.wcrt:9.2f} | "
            f"{naive.wcrt_of(name):8.2f} | {verdict.deadline:8.1f} | "
            f"{'yes' if verdict.meets_deadline else 'NO'}"
        )
    print(
        f"\nAnalyzed {proposed.transitions_analyzed} possible normal-to-critical "
        f"transitions; worst trigger for 'control': "
        f"{proposed.verdicts['control'].worst_transition}"
    )


if __name__ == "__main__":
    main()
