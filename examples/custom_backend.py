#!/usr/bin/env python3
"""Plugging a custom schedulability back-end into Algorithm 1.

The paper stresses that the ``sched`` function is exchangeable: "any other
schedulability analysis can be alternatively used as a back-end as long as
it can derive the worst-case/best-case completion/starting time of tasks"
(§3).  This example implements a deliberately crude back-end — fully
serialized execution per processor, no window reasoning — and compares it
against the default window analysis.

Run:  python examples/custom_backend.py
"""

from repro import (
    ApplicationSet,
    Channel,
    HardeningPlan,
    HardeningSpec,
    Mapping,
    MixedCriticalityAnalysis,
    Task,
    TaskGraph,
    harden,
)
from repro.model.architecture import homogeneous_architecture
from repro.sched.jobs import JobSet
from repro.sched.wcrt import ScheduleBounds


class SerializedBackend:
    """A trivially safe back-end: every processor serialises all its jobs.

    Worst-case finish of a job = its latest arrival + its WCET + the WCET
    of *every* other job on the same processor (regardless of priority or
    windows).  Best case matches the default (interference-free longest
    path).  Much cheaper, much more pessimistic — a useful lower bar when
    validating tighter analyses.
    """

    def analyze(self, jobset: JobSet) -> ScheduleBounds:
        jobs = jobset.jobs
        count = len(jobs)
        order = jobset.topo_order

        min_start = [0.0] * count
        min_finish = [0.0] * count
        max_finish = [0.0] * count

        per_pe_total = {}
        for job in jobs:
            per_pe_total[job.processor] = per_pe_total.get(job.processor, 0.0) + job.wcet

        for index in order:
            job = jobs[index]
            earliest = job.release
            latest = job.release
            for pred, comm_best, comm_worst, _on_demand in job.preds:
                earliest = max(earliest, min_finish[pred] + comm_best)
                latest = max(latest, max_finish[pred] + comm_worst)
            min_start[index] = earliest
            min_finish[index] = earliest + job.bcet
            interference = per_pe_total[job.processor] - job.wcet
            max_finish[index] = latest + job.wcet + interference

        max_start = [max_finish[i] - jobs[i].wcet for i in range(count)]
        return ScheduleBounds(
            jobset, min_start, min_finish, max_start, max_finish,
            converged=True, sweeps=1,
        )


def main():
    graph = TaskGraph(
        "app",
        tasks=[
            Task("a", 1.0, 2.0, detection_overhead=0.2),
            Task("b", 2.0, 4.0),
            Task("c", 1.0, 2.0),
        ],
        channels=[Channel("a", "b", 16.0), Channel("b", "c", 16.0)],
        period=30.0,
        reliability_target=1e-6,
    )
    side = TaskGraph(
        "side",
        tasks=[Task("s", 1.0, 3.0)],
        channels=[],
        period=15.0,
        service_value=2.0,
    )
    apps = ApplicationSet([graph, side])
    arch = homogeneous_architecture(2, fault_rate=1e-5)
    hardened = harden(apps, HardeningPlan({"a": HardeningSpec.reexecution(1)}))
    mapping = Mapping({"a": "pe0", "b": "pe0", "c": "pe1", "s": "pe0"})

    default = MixedCriticalityAnalysis().analyze(
        hardened, arch, mapping, dropped=("side",)
    )
    custom = MixedCriticalityAnalysis(backend=SerializedBackend()).analyze(
        hardened, arch, mapping, dropped=("side",)
    )

    print(f"{'application':>12} | {'window backend':>14} | {'serialized backend':>18}")
    print("-" * 52)
    for name in apps.graph_names:
        print(
            f"{name:>12} | {default.wcrt_of(name):14.2f} | "
            f"{custom.wcrt_of(name):18.2f}"
        )
    print(
        "\nBoth are safe upper bounds; the window analysis is tighter "
        "because it reasons about which jobs can actually overlap."
    )
    for name in apps.graph_names:
        assert custom.wcrt_of(name) >= default.wcrt_of(name) - 1e-9


if __name__ == "__main__":
    main()
