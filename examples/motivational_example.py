#!/usr/bin/env python3
"""The paper's motivational example (Figure 1), reproduced in simulation.

Three task graphs share the platform:

* ``ctrl`` (high criticality): A -> E, with A hardened by re-execution;
* ``aux``  (high criticality): B -> D, with B actively duplicated;
* ``media`` (low criticality): G -> H -> I, droppable.

(b) Without faults, every application meets its deadline.
(c) A fault in A triggers a re-execution; if the low-criticality tasks
    keep running, the high-critical task E misses its deadline.
(d) With mixed-criticality scheduling, the scheduler drops G, H and I
    when the fault is detected — E meets its deadline again.

Run:  python examples/motivational_example.py
"""

from repro import (
    ApplicationSet,
    Channel,
    HardeningPlan,
    HardeningSpec,
    Mapping,
    Task,
    TaskGraph,
    harden,
)
from repro.model.architecture import homogeneous_architecture
from repro.sim import FaultProfile, Simulator, WorstCaseSampler, render_gantt

DEADLINE = 20.0


def build_system():
    ctrl = TaskGraph(
        "ctrl",
        tasks=[Task("A", 3.0, 3.0, detection_overhead=0.5), Task("E", 5.0, 5.0)],
        channels=[Channel("A", "E", 0.0)],
        period=20.0,
        reliability_target=1e-6,
    )
    aux = TaskGraph(
        "aux",
        tasks=[Task("B", 6.0, 6.0, voting_overhead=0.2), Task("D", 4.0, 4.0)],
        channels=[Channel("B", "D", 0.0)],
        period=20.0,
        reliability_target=1e-6,
    )
    media = TaskGraph(
        "media",
        tasks=[Task("G", 1.5, 1.5), Task("H", 1.5, 1.5), Task("I", 1.5, 1.5)],
        channels=[Channel("G", "H", 0.0), Channel("H", "I", 0.0)],
        period=10.0,  # shorter period: G, H, I outrank A and E
        service_value=3.0,
    )
    apps = ApplicationSet([ctrl, aux, media])
    plan = HardeningPlan(
        {
            "A": HardeningSpec.reexecution(1),
            "B": HardeningSpec.active(2),
        }
    )
    hardened = harden(apps, plan)
    mapping = Mapping(
        {
            "A": "pe0",
            "E": "pe0",
            "G": "pe0",
            "H": "pe0",
            "I": "pe0",
            "B": "pe1",
            "B#vote": "pe1",
            "D": "pe1",
            "B#r1": "pe2",
        }
    )
    arch = homogeneous_architecture(3, fault_rate=1e-6)
    return hardened, arch, mapping


def report(label, result):
    print(f"--- {label} ---")
    for graph in ("ctrl", "aux", "media"):
        response = result.graph_response_time(graph)
        if response is None:
            print(f"  {graph:>6}: dropped")
            continue
        deadline = DEADLINE if graph != "media" else 10.0
        status = "meets" if response <= deadline + 1e-9 else "MISSES"
        print(f"  {graph:>6}: response {response:5.1f}  ({status} deadline {deadline:.0f})")
    if result.dropped_instances():
        dropped = ", ".join(
            f"{o.graph}@{o.instance}" for o in result.dropped_instances()
        )
        print(f"  dropped instances: {dropped}")
    print()


def main():
    hardened, arch, mapping = build_system()
    fault_in_a = FaultProfile([("A", 0, 0)], label="fault@A")

    # (b) fault-free: everything fits.
    keep_all = Simulator(hardened, arch, mapping, dropped=(), collect_trace=True)
    no_fault = keep_all.run(sampler=WorstCaseSampler())
    report("(b) no fault", no_fault)
    assert no_fault.graph_response_time("ctrl") <= DEADLINE

    # (c) fault at A, no task dropping: E misses its deadline.
    faulty = keep_all.run(profile=fault_in_a, sampler=WorstCaseSampler())
    report("(c) fault at A, no dropping", faulty)
    assert faulty.graph_response_time("ctrl") > DEADLINE, (
        "expected the ctrl application to miss its deadline"
    )

    # (d) fault at A, media in the dropped set: E meets the deadline.
    dropping = Simulator(
        hardened, arch, mapping, dropped=("media",), collect_trace=True
    )
    saved = dropping.run(profile=fault_in_a, sampler=WorstCaseSampler())
    report("(d) fault at A, dropping G/H/I", saved)
    assert saved.graph_response_time("ctrl") <= DEADLINE

    print("Gantt of (c) — G/H/I steal pe0 from E after the fault:")
    print(render_gantt(faulty, width=64, until=22.0))
    print()
    print("Gantt of (d) — the second media instance is dropped:")
    print(render_gantt(saved, width=64, until=22.0))
    print()

    print(
        "Dropping the low-criticality tasks after the fault recovers the\n"
        "high-critical deadline — the behaviour Algorithm 1 must bound."
    )


if __name__ == "__main__":
    main()
