#!/usr/bin/env python3
"""Design-space exploration on the Cruise benchmark (paper §4 / §5.2).

Runs a scaled-down version of the paper's GA (the paper uses population
100 and 5,000 generations; pass --full for that — it takes hours) and
prints the power/service Pareto front plus the best design in detail.

Run:  python examples/cruise_dse.py [--full]
"""

import argparse

from repro.dse import Explorer, ExplorerConfig
from repro.suites import get_benchmark


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true", help="paper-scale budgets")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--generations", type=int, default=25)
    parser.add_argument("--population", type=int, default=32)
    args = parser.parse_args()

    benchmark = get_benchmark("cruise")
    if args.full:
        config = ExplorerConfig(generations=5000, seed=args.seed)
    else:
        config = ExplorerConfig(
            population_size=args.population,
            offspring_size=args.population,
            archive_size=args.population,
            generations=args.generations,
            seed=args.seed,
            track_dropping_gain=True,
        )

    explorer = Explorer(benchmark.problem, config)

    def progress(generation, stats):
        if generation % 5 == 0:
            print(
                f"  generation {generation:4d}: {stats.evaluations:5d} evaluations, "
                f"{stats.feasible:4d} feasible"
            )

    print(f"Exploring {benchmark.name}: {benchmark.description}\n")
    result = explorer.run(progress=progress)
    stats = result.statistics

    print(f"\nPareto front ({len(result.pareto)} points):")
    print(f"{'power':>10} | {'service':>8} | dropped applications")
    print("-" * 50)
    for power, service, dropped in result.front_as_rows():
        label = "{" + ", ".join(dropped) + "}" if dropped else "{}"
        print(f"{power:10.3f} | {service:8.1f} | {label}")

    if stats.dropping_checked:
        print(
            f"\n{stats.dropping_gain} of {stats.feasible} feasible candidates "
            f"were feasible only thanks to task dropping "
            f"({100 * stats.dropping_gain_among_feasible:.1f}% of feasible)."
        )
    print(
        f"Hardening mix: "
        + ", ".join(
            f"{kind.value}: {count}"
            for kind, count in sorted(
                stats.hardening_histogram.items(), key=lambda kv: -kv[1]
            )
        )
    )

    best = result.best_power
    if best is not None:
        design = best.design
        print(f"\nBest-power design ({best.power:.3f}):")
        print(f"  allocated processors: {sorted(design.allocation)}")
        print(f"  dropped in critical mode: {sorted(design.dropped) or 'nothing'}")
        print(f"  hardened tasks:")
        for task, spec in design.plan.items():
            print(f"    {task:>10}: {spec.kind.value}"
                  + (f" (k={spec.reexecutions})" if spec.reexecutions else "")
                  + (f" ({spec.replicas} copies)" if spec.is_replicated else ""))


if __name__ == "__main__":
    main()
