#!/usr/bin/env python3
"""Sensitivity study of the Cruise reference design.

Once a design point is feasible, two questions follow: how much timing
headroom does each application have, and how much slower could the code
get before a deadline breaks — with and without task dropping.

Run:  python examples/sensitivity_study.py
"""

from repro.core.sensitivity import deadline_margins, wcet_scaling_margin
from repro.suites.cruise import (
    cruise_benchmark,
    cruise_reference_plan,
    cruise_sample_mappings,
)

DROPPABLE = ("info", "diag", "log", "cam")


def main():
    benchmark = cruise_benchmark()
    apps = benchmark.problem.applications
    arch = benchmark.problem.architecture
    plan = cruise_reference_plan()
    _hardened, mappings = cruise_sample_mappings()
    mapping = mappings[0]  # the locality-first placement

    print("Deadline margins (deadline / WCRT; > 1 means headroom):")
    margins = deadline_margins(apps, plan, arch, mapping, dropped=DROPPABLE)
    for name, margin in sorted(margins.items()):
        bar = "#" * min(40, int(margin * 10))
        print(f"  {name:>6}: {margin:6.2f}  {bar}")

    print("\nUniform WCET scaling margin (binary search):")
    with_dropping = wcet_scaling_margin(
        apps, plan, arch, mapping, dropped=DROPPABLE, tolerance=0.02
    )
    without_dropping = wcet_scaling_margin(
        apps, plan, arch, mapping, dropped=(), tolerance=0.02
    )
    print(f"  with dropping enabled : tasks may run {with_dropping:.2f}x slower")
    print(f"  with dropping disabled: tasks may run {without_dropping:.2f}x slower")
    if with_dropping > without_dropping:
        gain = 100 * (with_dropping / max(without_dropping, 1e-9) - 1)
        print(
            f"\nTask dropping buys {gain:.0f}% extra timing robustness on this "
            f"design — the §5.2 effect, seen from the sensitivity angle."
        )


if __name__ == "__main__":
    main()
