"""Message-loss fault injection: profile semantics and engine timing."""

import pytest

from repro.core.factory import make_analysis
from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture, Interconnect, Processor
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sim.engine import Simulator
from repro.sim.faults import FaultProfile
from repro.sim.sampler import WorstCaseSampler


class TestProfile:
    def test_message_fault_lookup(self):
        profile = FaultProfile(
            (), message_faults=(("a", "b", 0, 0), ("a", "b", 0, 1))
        )
        assert profile.is_message_lost("a", "b", 0, 0)
        assert profile.is_message_lost("a", "b", 0, 1)
        assert not profile.is_message_lost("a", "b", 0, 2)
        assert not profile.is_message_lost("a", "b", 1, 0)
        assert profile.has_message_faults
        assert len(profile) == 2

    def test_round_trip(self):
        profile = FaultProfile(
            (("t", 0, 1),),
            label="mixed",
            message_faults=(("a", "b", 0, 0),),
        )
        restored = FaultProfile.from_dict(profile.to_dict())
        assert restored == profile
        assert restored.message_faults == frozenset({("a", "b", 0, 0)})

    def test_serialization_omits_empty_message_faults(self):
        payload = FaultProfile((("t", 0, 1),)).to_dict()
        assert "message_faults" not in payload

    def test_equality_includes_message_faults(self):
        base = FaultProfile(())
        lossy = FaultProfile((), message_faults=(("a", "b", 0, 0),))
        assert base != lossy
        assert hash(base) != hash(lossy)


def _setup(arq_retries=1, arq_timeout=0.5):
    graph = TaskGraph(
        "g",
        tasks=[Task("a", 1.0, 2.0), Task("b", 1.0, 2.0)],
        channels=[Channel("a", "b", 200.0)],
        period=100.0,
        reliability_target=1e-6,
    )
    apps = ApplicationSet([graph])
    arch = Architecture(
        [Processor("pe0"), Processor("pe1")],
        Interconnect(
            bandwidth=100.0,
            base_latency=1.0,
            arq_retries=arq_retries,
            arq_timeout=arq_timeout,
        ),
    )
    hardened = harden(apps, HardeningPlan())
    mapping = Mapping({"a": "pe0", "b": "pe1"})
    return hardened, arch, mapping


def _response(hardened, arch, mapping, profile=None):
    simulator = Simulator(hardened, arch, mapping)
    result = simulator.run(profile=profile, sampler=WorstCaseSampler())
    return result, result.response_times()["g"]


class TestEngine:
    def test_single_loss_costs_one_resend(self):
        hardened, arch, mapping = _setup()
        _, baseline = _response(hardened, arch, mapping)
        lossy = FaultProfile((), message_faults=(("a", "b", 0, 0),))
        result, delayed = _response(hardened, arch, mapping, lossy)
        # One lost attempt: one more worst-case send (3.0) + timeout.
        assert delayed == pytest.approx(baseline + 3.0 + 0.5)
        assert result.faults_observed == 1
        assert not result.unsafe_events

    def test_exhausted_budget_delivers_corrupt(self):
        hardened, arch, mapping = _setup(arq_retries=1)
        _, baseline = _response(hardened, arch, mapping)
        exhausted = FaultProfile(
            (), message_faults=(("a", "b", 0, 0), ("a", "b", 0, 1))
        )
        result, delayed = _response(hardened, arch, mapping, exhausted)
        # Budget k=1: the delivery still happens at the folded
        # (k+1)*worst + k*timeout cost, flagged unsafe.
        assert delayed == pytest.approx(baseline + 3.0 + 0.5)
        assert ("a>b", 0) in result.unsafe_events

    def test_no_arq_budget_single_loss_is_unsafe(self):
        hardened, arch, mapping = _setup(arq_retries=0, arq_timeout=0.0)
        _, baseline = _response(hardened, arch, mapping)
        lossy = FaultProfile((), message_faults=(("a", "b", 0, 0),))
        result, delayed = _response(hardened, arch, mapping, lossy)
        assert delayed == pytest.approx(baseline)
        assert ("a>b", 0) in result.unsafe_events

    def test_losses_never_exceed_the_analysis_bound(self):
        hardened, arch, mapping = _setup(arq_retries=2, arq_timeout=0.5)
        bound = (
            make_analysis()
            .analyze(hardened, arch, mapping)
            .verdicts["g"]
            .wcrt
        )
        worst_profile = FaultProfile(
            (),
            message_faults=tuple(("a", "b", 0, k) for k in range(3)),
        )
        _, delayed = _response(hardened, arch, mapping, worst_profile)
        assert delayed <= bound + 1e-6

    def test_same_processor_messages_ignore_losses(self):
        hardened, arch, mapping = _setup()
        local = Mapping({"a": "pe0", "b": "pe0"})
        _, baseline = _response(hardened, arch, local)
        lossy = FaultProfile((), message_faults=(("a", "b", 0, 0),))
        result, delayed = _response(hardened, arch, local, lossy)
        assert delayed == pytest.approx(baseline)
        assert result.faults_observed == 0
