"""Unit tests for execution-time samplers."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.sampler import (
    BestCaseSampler,
    BiasedSampler,
    UniformSampler,
    WorstCaseSampler,
)


class TestDeterministicSamplers:
    def test_worst_case(self):
        assert WorstCaseSampler().sample(1.0, 5.0, random.Random(0)) == 5.0

    def test_best_case(self):
        assert BestCaseSampler().sample(1.0, 5.0, random.Random(0)) == 1.0


class TestRandomSamplers:
    @given(st.floats(min_value=0.0, max_value=10.0), st.floats(min_value=0.0, max_value=10.0))
    def test_uniform_stays_in_range(self, a, b):
        bcet, wcet = min(a, b), max(a, b)
        value = UniformSampler().sample(bcet, wcet, random.Random(1))
        assert bcet <= value <= wcet

    def test_uniform_degenerate_range(self):
        assert UniformSampler().sample(3.0, 3.0, random.Random(0)) == 3.0

    def test_biased_hits_wcet_often(self):
        rng = random.Random(42)
        sampler = BiasedSampler(0.5)
        hits = sum(
            1 for _ in range(400) if sampler.sample(1.0, 5.0, rng) == 5.0
        )
        assert 120 < hits < 280  # ~50% +- slack

    def test_biased_always_worst_at_one(self):
        rng = random.Random(0)
        sampler = BiasedSampler(1.0)
        assert all(sampler.sample(1.0, 5.0, rng) == 5.0 for _ in range(20))

    def test_biased_validates_probability(self):
        with pytest.raises(SimulationError):
            BiasedSampler(1.5)
        with pytest.raises(SimulationError):
            BiasedSampler(-0.1)
