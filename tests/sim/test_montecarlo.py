"""Unit tests for the Monte-Carlo (WC-Sim) estimator."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.montecarlo import MonteCarloEstimator
from repro.sim.sampler import WorstCaseSampler


@pytest.fixture
def simulator(hardened, architecture, mapping):
    return Simulator(hardened, architecture, mapping, dropped=("lo",))


class TestEstimation:
    def test_covers_all_graphs(self, simulator):
        result = MonteCarloEstimator(simulator).estimate(profiles=30, seed=1)
        assert "hi" in result.worst_response
        assert result.profiles == 31  # 30 random + 1 fault-free

    def test_fault_free_floor(self, simulator):
        # The estimate is never below the fault-free worst-case trace.
        baseline = simulator.run(sampler=WorstCaseSampler())
        estimate = MonteCarloEstimator(
            simulator, sampler=WorstCaseSampler()
        ).estimate(profiles=10, seed=2)
        assert estimate.worst_response["hi"] >= (
            baseline.graph_response_time("hi") - 1e-9
        )

    def test_deterministic_per_seed(self, simulator):
        a = MonteCarloEstimator(simulator).estimate(profiles=20, seed=5)
        b = MonteCarloEstimator(simulator).estimate(profiles=20, seed=5)
        assert a.worst_response == b.worst_response

    def test_more_profiles_never_reduce_estimate(self, simulator):
        small = MonteCarloEstimator(simulator).estimate(profiles=10, seed=3)
        large = MonteCarloEstimator(simulator).estimate(profiles=40, seed=3)
        for graph, value in small.worst_response.items():
            assert large.worst_response[graph] >= value - 1e-9

    def test_critical_runs_counted(self, simulator):
        result = MonteCarloEstimator(simulator).estimate(profiles=40, seed=4)
        # Faults target hardened tasks, so most runs go critical.
        assert result.critical_runs > 0
        assert result.critical_runs <= result.profiles

    def test_without_fault_free_run(self, simulator):
        estimator = MonteCarloEstimator(simulator, include_fault_free=False)
        result = estimator.estimate(profiles=5, seed=1)
        assert result.profiles == 5

    def test_wcrt_of_accessor(self, simulator):
        result = MonteCarloEstimator(simulator).estimate(profiles=5, seed=1)
        assert result.wcrt_of("hi") == result.worst_response["hi"]
        assert result.wcrt_of("ghost") is None
