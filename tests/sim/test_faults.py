"""Unit tests for failure profiles."""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hardening.spec import HardeningKind
from repro.sim.faults import (
    FaultProfile,
    adhoc_profile,
    no_fault_profile,
    random_profile,
)


class TestFaultProfile:
    def test_explicit_membership(self):
        profile = FaultProfile([("t", 0, 1)])
        assert profile.is_faulty("t", 0, 1)
        assert not profile.is_faulty("t", 0, 0)
        assert not profile.is_faulty("u", 0, 1)
        assert len(profile) == 1

    def test_no_fault_profile_empty(self):
        profile = no_fault_profile()
        assert len(profile) == 0
        assert not profile.is_faulty("anything", 0, 0)

    def test_iteration_sorted(self):
        profile = FaultProfile([("b", 0, 0), ("a", 1, 2)])
        assert list(profile) == [("a", 1, 2), ("b", 0, 0)]


class TestAdhocProfile:
    def test_reexecutable_tasks_maximally_faulted(self, hardened):
        profile = adhoc_profile(hardened)
        # a has k=2: attempts 0 and 1 fault, the final attempt succeeds.
        assert profile.is_faulty("a", 0, 0)
        assert profile.is_faulty("a", 0, 1)
        assert not profile.is_faulty("a", 0, 2)

    def test_passive_groups_triggered(self, hardened):
        profile = adhoc_profile(hardened)
        first_active = hardened.replica_groups["b"][0]
        assert profile.is_faulty(first_active, 0, 0)

    def test_unhardened_tasks_untouched(self, hardened):
        profile = adhoc_profile(hardened)
        assert not profile.is_faulty("c", 0, 0)
        assert not profile.is_faulty("x", 0, 0)

    def test_multi_hyperperiod(self, hardened):
        profile = adhoc_profile(hardened, hyperperiods=2)
        assert profile.is_faulty("a", 1, 0)


class TestRandomProfile:
    def test_targets_hardened_executions(self, hardened):
        rng = random.Random(3)
        for _ in range(20):
            profile = random_profile(hardened, rng)
            assert 1 <= len(profile) <= 3
            group = set(hardened.replica_groups.get("b", ()))
            for task, _instance, attempt in profile:
                assert task == "a" or task in group
                if task == "a":
                    assert 0 <= attempt <= 2

    def test_deterministic_per_seed(self, hardened):
        a = random_profile(hardened, random.Random(7))
        b = random_profile(hardened, random.Random(7))
        assert list(a) == list(b)

    def test_max_faults_validated(self, hardened):
        with pytest.raises(SimulationError):
            random_profile(hardened, random.Random(0), max_faults=0)

    def test_empty_when_nothing_hardened(self, apps):
        from repro.hardening.spec import HardeningPlan
        from repro.hardening.transform import harden

        plain = harden(apps, HardeningPlan())
        profile = random_profile(plain, random.Random(0))
        assert len(profile) == 0


class TestProfileSerialization:
    _keys = st.tuples(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=4),
    )

    @given(
        faults=st.lists(_keys, max_size=10),
        label=st.text(max_size=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_dict_round_trip(self, faults, label):
        profile = FaultProfile(faults, label=label)
        clone = FaultProfile.from_dict(profile.to_dict())
        assert clone == profile
        assert hash(clone) == hash(profile)
        assert clone.to_dict() == profile.to_dict()

    def test_to_dict_is_sorted_and_json_stable(self):
        profile = FaultProfile([("b", 1, 0), ("a", 0, 2)], label="mix")
        payload = profile.to_dict()
        assert payload == {
            "label": "mix",
            "faults": [["a", 0, 2], ["b", 1, 0]],
        }
        assert json.loads(json.dumps(payload)) == payload

    def test_equality_includes_label(self):
        assert FaultProfile([("a", 0, 0)], label="x") != FaultProfile(
            [("a", 0, 0)], label="y"
        )
