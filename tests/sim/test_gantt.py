"""Unit tests for the text Gantt renderer."""

import pytest

from repro.errors import SimulationError
from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import homogeneous_architecture
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sim.engine import Simulator
from repro.sim.gantt import busy_times, execution_segments, render_gantt
from repro.sim.sampler import WorstCaseSampler


@pytest.fixture
def traced_result():
    graph = TaskGraph(
        "g",
        tasks=[Task("alpha", 2.0, 2.0), Task("beta", 3.0, 3.0)],
        channels=[Channel("alpha", "beta", 0.0)],
        period=10.0,
        reliability_target=1e-6,
    )
    hardened = harden(ApplicationSet([graph]), HardeningPlan())
    sim = Simulator(
        hardened,
        homogeneous_architecture(2),
        Mapping({"alpha": "pe0", "beta": "pe1"}),
        collect_trace=True,
    )
    return sim.run(sampler=WorstCaseSampler())


class TestSegments:
    def test_segments_match_execution(self, traced_result):
        segments = execution_segments(traced_result)
        by_task = {(s.task, s.instance): s for s in segments}
        alpha = by_task[("alpha", 0)]
        beta = by_task[("beta", 0)]
        assert (alpha.start, alpha.end) == (0.0, 2.0)
        assert beta.start == pytest.approx(2.0)
        assert beta.end == pytest.approx(5.0)
        assert alpha.processor == "pe0"
        assert beta.processor == "pe1"

    def test_requires_trace(self):
        from repro.sim.trace import SimulationResult

        with pytest.raises(SimulationError, match="collect_trace"):
            execution_segments(SimulationResult())


class TestRendering:
    def test_rows_per_processor(self, traced_result):
        chart = render_gantt(traced_result, width=40)
        lines = chart.splitlines()
        assert len(lines) == 3  # header + 2 processors
        assert lines[1].startswith("pe0")
        assert lines[2].startswith("pe1")

    def test_glyphs_present(self, traced_result):
        chart = render_gantt(traced_result, width=40)
        pe0_row = chart.splitlines()[1]
        pe1_row = chart.splitlines()[2]
        assert "A" in pe0_row and "A" not in pe1_row
        assert "B" in pe1_row and "B" not in pe0_row

    def test_until_clamps_horizon(self, traced_result):
        with pytest.raises(SimulationError):
            render_gantt(traced_result, until=0.0)
        wide = render_gantt(traced_result, width=40, until=20.0)
        assert "A" in wide


class TestBusyTimes:
    def test_totals(self, traced_result):
        totals = busy_times(traced_result)
        assert totals["pe0"] == pytest.approx(2.0)
        assert totals["pe1"] == pytest.approx(3.0)

    def test_preempted_task_splits_segments(self):
        fast = TaskGraph(
            "fast", [Task("fff", 2.0, 2.0)], [], period=5.0, service_value=1.0
        )
        slow = TaskGraph(
            "slow", [Task("sss", 6.0, 6.0)], [], period=10.0,
            reliability_target=1e-6,
        )
        hardened = harden(ApplicationSet([fast, slow]), HardeningPlan())
        sim = Simulator(
            hardened,
            homogeneous_architecture(1),
            Mapping({"fff": "pe0", "sss": "pe0"}),
            collect_trace=True,
        )
        result = sim.run(sampler=WorstCaseSampler())
        segments = execution_segments(result)
        slow_segments = [s for s in segments if s.task == "sss"]
        assert len(slow_segments) == 2  # preempted by the second fff job
        assert busy_times(result)["pe0"] == pytest.approx(2 * 2.0 + 6.0)
