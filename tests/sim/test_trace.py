"""Unit tests for trace records and result aggregation."""

from repro.sim.trace import InstanceOutcome, SimulationResult, TraceEvent


class TestInstanceOutcome:
    def test_response_time(self):
        outcome = InstanceOutcome("g", 0, release=10.0, finish=17.5, deadline=10.0)
        assert outcome.response_time == 7.5
        assert outcome.met_deadline

    def test_dropped_instance(self):
        outcome = InstanceOutcome("g", 0, release=10.0, dropped=True)
        assert outcome.response_time is None
        assert outcome.met_deadline is None

    def test_deadline_miss(self):
        outcome = InstanceOutcome("g", 0, release=0.0, finish=11.0, deadline=10.0)
        assert outcome.met_deadline is False


class TestSimulationResult:
    def make(self):
        return SimulationResult(
            outcomes=[
                InstanceOutcome("g", 0, 0.0, finish=5.0, deadline=10.0),
                InstanceOutcome("g", 1, 10.0, finish=18.0, deadline=10.0),
                InstanceOutcome("h", 0, 0.0, dropped=True, deadline=20.0),
                InstanceOutcome("h", 1, 20.0, finish=45.0, deadline=20.0),
            ],
            transitions=[(4.0, "t")],
        )

    def test_graph_response_time_max_over_instances(self):
        result = self.make()
        assert result.graph_response_time("g") == 8.0

    def test_dropped_excluded(self):
        result = self.make()
        assert result.graph_response_time("h") == 25.0

    def test_all_dropped_returns_none(self):
        result = SimulationResult(
            outcomes=[InstanceOutcome("h", 0, 0.0, dropped=True)]
        )
        assert result.graph_response_time("h") is None

    def test_response_times_map(self):
        times = self.make().response_times()
        assert times == {"g": 8.0, "h": 25.0}

    def test_deadline_misses(self):
        misses = self.make().deadline_misses()
        assert [(o.graph, o.instance) for o in misses] == [("h", 1)]

    def test_dropped_instances(self):
        dropped = self.make().dropped_instances()
        assert [(o.graph, o.instance) for o in dropped] == [("h", 0)]

    def test_entered_critical_state(self):
        assert self.make().entered_critical_state
        assert not SimulationResult().entered_critical_state
