"""Edge-case simulator tests."""

import pytest

from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import (
    Architecture,
    Interconnect,
    Processor,
    homogeneous_architecture,
)
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sim.engine import Simulator
from repro.sim.faults import FaultProfile
from repro.sim.sampler import WorstCaseSampler


class TestZeroDurationElements:
    def test_free_voter(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("v", 2.0, 2.0, voting_overhead=0.0), Task("w", 1.0, 1.0)],
            channels=[Channel("v", "w", 0.0)],
            period=10.0,
            reliability_target=1e-6,
        )
        hardened = harden(
            ApplicationSet([graph]), HardeningPlan({"v": HardeningSpec.active(2)})
        )
        mapping = Mapping({"v": "pe0", "v#r1": "pe1", "v#vote": "pe0", "w": "pe0"})
        result = Simulator(hardened, homogeneous_architecture(2), mapping).run(
            sampler=WorstCaseSampler()
        )
        assert result.graph_response_time("g") == pytest.approx(3.0)

    def test_zero_wcet_task(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("a", 0.0, 0.0), Task("b", 1.0, 2.0)],
            channels=[Channel("a", "b", 0.0)],
            period=10.0,
            service_value=1.0,
        )
        hardened = harden(ApplicationSet([graph]), HardeningPlan())
        result = Simulator(
            hardened, homogeneous_architecture(1), Mapping({"a": "pe0", "b": "pe0"})
        ).run(sampler=WorstCaseSampler())
        assert result.graph_response_time("g") == pytest.approx(2.0)


class TestCommunicationEdges:
    def test_base_latency_applies(self):
        arch = Architecture(
            [Processor("pe0"), Processor("pe1")],
            Interconnect(bandwidth=10.0, base_latency=3.0),
        )
        graph = TaskGraph(
            "g",
            tasks=[Task("a", 1.0, 1.0), Task("b", 1.0, 1.0)],
            channels=[Channel("a", "b", 20.0)],  # 3 + 2 = 5 ms transfer
            period=20.0,
            reliability_target=1e-6,
        )
        hardened = harden(ApplicationSet([graph]), HardeningPlan())
        result = Simulator(
            hardened, arch, Mapping({"a": "pe0", "b": "pe1"})
        ).run(sampler=WorstCaseSampler())
        assert result.graph_response_time("g") == pytest.approx(1 + 5 + 1)

    def test_same_pe_channel_free_despite_latency(self):
        arch = Architecture(
            [Processor("pe0")], Interconnect(bandwidth=10.0, base_latency=3.0)
        )
        graph = TaskGraph(
            "g",
            tasks=[Task("a", 1.0, 1.0), Task("b", 1.0, 1.0)],
            channels=[Channel("a", "b", 20.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        hardened = harden(ApplicationSet([graph]), HardeningPlan())
        result = Simulator(
            hardened, arch, Mapping({"a": "pe0", "b": "pe0"})
        ).run(sampler=WorstCaseSampler())
        assert result.graph_response_time("g") == pytest.approx(2.0)


class TestPeriodicitySteadyState:
    def test_instances_identical_without_faults(self):
        fast = TaskGraph(
            "fast", [Task("f", 1.0, 2.0)], [], period=10.0, service_value=1.0
        )
        slow = TaskGraph(
            "slow",
            [Task("s0", 2.0, 3.0), Task("s1", 1.0, 2.0)],
            [Channel("s0", "s1", 5.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        hardened = harden(ApplicationSet([fast, slow]), HardeningPlan())
        result = Simulator(
            hardened,
            homogeneous_architecture(1),
            Mapping({"f": "pe0", "s0": "pe0", "s1": "pe0"}),
        ).run(sampler=WorstCaseSampler(), hyperperiods=3)
        responses = {}
        for outcome in result.outcomes:
            responses.setdefault(outcome.graph, set()).add(
                round(outcome.response_time, 9)
            )
        # Steady state: every instance of a graph responds identically.
        for graph, values in responses.items():
            assert len(values) == 1, (graph, values)

    def test_fault_effect_confined_to_its_hyperperiod(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("t", 2.0, 2.0, detection_overhead=0.5)],
            channels=[],
            period=10.0,
            reliability_target=1e-4,
        )
        hardened = harden(
            ApplicationSet([graph]), HardeningPlan({"t": HardeningSpec.reexecution(1)})
        )
        result = Simulator(
            hardened, homogeneous_architecture(1), Mapping({"t": "pe0"})
        ).run(
            profile=FaultProfile([("t", 0, 0)]),
            sampler=WorstCaseSampler(),
            hyperperiods=2,
        )
        first, second = sorted(
            (o for o in result.outcomes if o.graph == "g"),
            key=lambda o: o.instance,
        )
        assert first.response_time == pytest.approx(5.0)  # 2.5 x 2
        assert second.response_time == pytest.approx(2.5)


class TestDeadlineBoundary:
    def test_exactly_on_deadline_counts_as_met(self):
        graph = TaskGraph(
            "g", [Task("t", 5.0, 5.0)], [], period=10.0, deadline=5.0,
            service_value=1.0,
        )
        hardened = harden(ApplicationSet([graph]), HardeningPlan())
        result = Simulator(
            hardened, homogeneous_architecture(1), Mapping({"t": "pe0"})
        ).run(sampler=WorstCaseSampler())
        (outcome,) = [o for o in result.outcomes if o.instance == 0]
        assert outcome.met_deadline is True
        assert result.deadline_misses() == []
