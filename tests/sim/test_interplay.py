"""Cross-feature simulator tests: hardening x dropping x policy."""

import pytest

from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import homogeneous_architecture
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sim.engine import Simulator
from repro.sim.faults import FaultProfile
from repro.sim.sampler import WorstCaseSampler


class TestCheckpointWithDropping:
    def make(self):
        critical = TaskGraph(
            "crit",
            tasks=[Task("c", 6.0, 6.0, detection_overhead=1.0)],
            channels=[],
            period=30.0,
            reliability_target=1e-4,
        )
        low = TaskGraph(
            "low",
            tasks=[Task("l", 3.0, 3.0)],
            channels=[],
            period=15.0,
            service_value=1.0,
        )
        apps = ApplicationSet([critical, low])
        hardened = harden(
            apps,
            HardeningPlan({"c": HardeningSpec.checkpointing(1, segments=3)}),
        )
        return hardened, Mapping({"c": "pe0", "l": "pe0"})

    def test_checkpoint_fault_triggers_dropping(self):
        hardened, mapping = self.make()
        sim = Simulator(
            hardened, homogeneous_architecture(1), mapping, dropped=("low",)
        )
        result = sim.run(
            profile=FaultProfile([("c", 0, 0)]), sampler=WorstCaseSampler()
        )
        assert result.entered_critical_state
        # l@0 ran [0,3] before c; l@1 (release 15) is dropped.
        assert [(o.graph, o.instance) for o in result.dropped_instances()] == [
            ("low", 1)
        ]
        # c: 3 + nominal (6 + 3) + one segment recovery (2 + 1) = 15.
        assert result.graph_response_time("crit") == pytest.approx(15.0)


class TestPassiveWithEdf:
    def make(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("v", 2.0, 2.0, voting_overhead=0.5), Task("w", 1.0, 1.0)],
            channels=[Channel("v", "w", 0.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        hardened = harden(
            ApplicationSet([graph]),
            HardeningPlan({"v": HardeningSpec.passive(3, active=2)}),
        )
        mapping = Mapping(
            {"v": "pe0", "v#r1": "pe1", "v#p0": "pe2", "v#vote": "pe0", "w": "pe0"}
        )
        return hardened, mapping

    def test_activation_under_edf(self):
        hardened, mapping = self.make()
        sim = Simulator(
            hardened, homogeneous_architecture(3), mapping, policy="edf"
        )
        result = sim.run(
            profile=FaultProfile([("v#r1", 0, 0)]), sampler=WorstCaseSampler()
        )
        assert result.entered_critical_state
        assert result.unsafe_events == []
        # actives [0,2], p0 [2,4], vote [4,4.5], w [4.5,5.5] — same as FP
        # here because nothing competes for a processor.
        assert result.graph_response_time("g") == pytest.approx(5.5)


class TestMultiFaultRuns:
    def test_two_triggers_in_one_hyperperiod(self):
        g1 = TaskGraph(
            "g1",
            tasks=[Task("a", 2.0, 2.0, detection_overhead=0.5)],
            channels=[],
            period=20.0,
            reliability_target=1e-4,
        )
        g2 = TaskGraph(
            "g2",
            tasks=[Task("b", 3.0, 3.0, detection_overhead=0.5)],
            channels=[],
            period=20.0,
            reliability_target=1e-4,
        )
        low = TaskGraph(
            "low", [Task("l", 1.0, 1.0)], [], period=10.0, service_value=1.0
        )
        apps = ApplicationSet([g1, g2, low])
        hardened = harden(
            apps,
            HardeningPlan(
                {
                    "a": HardeningSpec.reexecution(1),
                    "b": HardeningSpec.reexecution(1),
                }
            ),
        )
        sim = Simulator(
            hardened,
            homogeneous_architecture(2),
            Mapping({"a": "pe0", "b": "pe1", "l": "pe0"}),
            dropped=("low",),
        )
        result = sim.run(
            profile=FaultProfile([("a", 0, 0), ("b", 0, 0)]),
            sampler=WorstCaseSampler(),
        )
        assert result.faults_observed == 2
        assert len(result.transitions) == 2
        # Both re-executions complete; the system stays consistent.
        assert result.graph_response_time("g1") == pytest.approx(6.0)  # l first
        assert result.graph_response_time("g2") == pytest.approx(7.0)

    def test_analysis_still_bounds_double_fault(self):
        from repro.core.analysis import MixedCriticalityAnalysis

        g1 = TaskGraph(
            "g1",
            tasks=[Task("a", 2.0, 2.0, detection_overhead=0.5), Task("c", 1.0, 1.0)],
            channels=[Channel("a", "c", 0.0)],
            period=20.0,
            reliability_target=1e-4,
        )
        apps = ApplicationSet([g1])
        hardened = harden(apps, HardeningPlan({"a": HardeningSpec.reexecution(2)}))
        arch = homogeneous_architecture(1)
        mapping = Mapping({"a": "pe0", "c": "pe0"})
        analysis = MixedCriticalityAnalysis().analyze(hardened, arch, mapping)
        sim = Simulator(hardened, arch, mapping)
        double = sim.run(
            profile=FaultProfile([("a", 0, 0), ("a", 0, 1)]),
            sampler=WorstCaseSampler(),
        )
        assert analysis.wcrt_of("g1") >= double.graph_response_time("g1") - 1e-9
