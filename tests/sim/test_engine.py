"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture, Interconnect, Processor
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sim.engine import Simulator
from repro.sim.faults import FaultProfile, no_fault_profile
from repro.sim.sampler import BestCaseSampler, WorstCaseSampler


def simple_arch(n=2):
    return Architecture(
        [Processor(f"pe{i}") for i in range(n)],
        Interconnect(bandwidth=10.0, base_latency=0.0),
    )


def chain_apps():
    graph = TaskGraph(
        "g",
        tasks=[Task("a", 1.0, 2.0, detection_overhead=0.5), Task("b", 2.0, 3.0)],
        channels=[Channel("a", "b", 0.0)],
        period=20.0,
        reliability_target=1e-6,
    )
    return ApplicationSet([graph])


class TestFaultFreeExecution:
    def test_chain_timing_exact(self):
        hardened = harden(chain_apps(), HardeningPlan())
        sim = Simulator(hardened, simple_arch(), Mapping({"a": "pe0", "b": "pe0"}))
        result = sim.run(sampler=WorstCaseSampler())
        assert result.graph_response_time("g") == pytest.approx(5.0)
        assert not result.entered_critical_state
        assert result.faults_observed == 0

    def test_best_case_sampling(self):
        hardened = harden(chain_apps(), HardeningPlan())
        sim = Simulator(hardened, simple_arch(), Mapping({"a": "pe0", "b": "pe0"}))
        result = sim.run(sampler=BestCaseSampler())
        assert result.graph_response_time("g") == pytest.approx(3.0)

    def test_cross_pe_communication_delay(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("a", 1.0, 2.0), Task("b", 2.0, 3.0)],
            channels=[Channel("a", "b", 20.0)],  # 2 ms on the bus
            period=20.0,
            reliability_target=1e-6,
        )
        hardened = harden(ApplicationSet([graph]), HardeningPlan())
        sim = Simulator(hardened, simple_arch(), Mapping({"a": "pe0", "b": "pe1"}))
        result = sim.run(sampler=WorstCaseSampler())
        assert result.graph_response_time("g") == pytest.approx(7.0)

    def test_preemption_by_higher_priority(self):
        fast = TaskGraph(
            "fast", [Task("f", 2.0, 2.0)], [], period=10.0, service_value=1.0
        )
        slow = TaskGraph(
            "slow", [Task("s", 6.0, 6.0)], [], period=20.0, reliability_target=1e-6
        )
        hardened = harden(ApplicationSet([fast, slow]), HardeningPlan())
        sim = Simulator(hardened, simple_arch(1), Mapping({"f": "pe0", "s": "pe0"}))
        result = sim.run(sampler=WorstCaseSampler())
        # s starts at 0... f (higher priority, released at 0) runs first:
        # f [0,2], s [2,8]; second f instance at 10 does not affect s.
        assert result.graph_response_time("slow") == pytest.approx(8.0)
        assert result.graph_response_time("fast") == pytest.approx(2.0)

    def test_multi_hyperperiod_run(self):
        hardened = harden(chain_apps(), HardeningPlan())
        sim = Simulator(hardened, simple_arch(), Mapping({"a": "pe0", "b": "pe0"}))
        result = sim.run(sampler=WorstCaseSampler(), hyperperiods=3)
        instances = [o for o in result.outcomes if o.graph == "g"]
        assert len(instances) == 3
        assert all(o.response_time == pytest.approx(5.0) for o in instances)


class TestReexecution:
    def make(self, k=1):
        hardened = harden(chain_apps(), HardeningPlan({"a": HardeningSpec.reexecution(k)}))
        sim = Simulator(hardened, simple_arch(), Mapping({"a": "pe0", "b": "pe0"}))
        return sim

    def test_fault_free_includes_detection_overhead(self):
        result = self.make().run(sampler=WorstCaseSampler())
        # a runs 2 + 0.5 detection, then b 3.
        assert result.graph_response_time("g") == pytest.approx(5.5)

    def test_single_fault_reexecutes(self):
        result = self.make().run(
            profile=FaultProfile([("a", 0, 0)]), sampler=WorstCaseSampler()
        )
        # a runs twice: 2 * 2.5, then b 3.
        assert result.graph_response_time("g") == pytest.approx(8.0)
        assert result.entered_critical_state
        assert result.faults_observed == 1
        assert result.unsafe_events == []

    def test_exhausted_retries_are_unsafe(self):
        result = self.make(k=1).run(
            profile=FaultProfile([("a", 0, 0), ("a", 0, 1)]),
            sampler=WorstCaseSampler(),
        )
        assert ("a", 0) in result.unsafe_events
        # timing still completes: two attempts then b
        assert result.graph_response_time("g") == pytest.approx(8.0)


class TestReplication:
    def test_active_replication_masks_without_transition(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("v", 2.0, 2.0, voting_overhead=0.5), Task("w", 1.0, 1.0)],
            channels=[Channel("v", "w", 0.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        hardened = harden(
            ApplicationSet([graph]), HardeningPlan({"v": HardeningSpec.active(3)})
        )
        mapping = Mapping(
            {"v": "pe0", "v#r1": "pe1", "v#r2": "pe2", "v#vote": "pe0", "w": "pe0"}
        )
        sim = Simulator(hardened, simple_arch(3), mapping)
        result = sim.run(
            profile=FaultProfile([("v#r1", 0, 0)]), sampler=WorstCaseSampler()
        )
        assert not result.entered_critical_state
        assert result.unsafe_events == []
        # v copies in parallel [0,2], vote [2,2.5], w [2.5,3.5]
        assert result.graph_response_time("g") == pytest.approx(3.5)

    def test_majority_of_faulty_copies_is_unsafe(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("v", 2.0, 2.0, voting_overhead=0.5)],
            channels=[],
            period=20.0,
            reliability_target=1e-6,
        )
        hardened = harden(
            ApplicationSet([graph]), HardeningPlan({"v": HardeningSpec.active(3)})
        )
        mapping = Mapping({"v": "pe0", "v#r1": "pe1", "v#r2": "pe2", "v#vote": "pe0"})
        sim = Simulator(hardened, simple_arch(3), mapping)
        result = sim.run(
            profile=FaultProfile([("v", 0, 0), ("v#r2", 0, 0)]),
            sampler=WorstCaseSampler(),
        )
        assert ("v#vote", 0) in result.unsafe_events


class TestPassiveReplication:
    def make(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("v", 2.0, 2.0, voting_overhead=0.5), Task("w", 1.0, 1.0)],
            channels=[Channel("v", "w", 0.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        hardened = harden(
            ApplicationSet([graph]),
            HardeningPlan({"v": HardeningSpec.passive(3, active=2)}),
        )
        mapping = Mapping(
            {"v": "pe0", "v#r1": "pe1", "v#p0": "pe2", "v#vote": "pe0", "w": "pe0"}
        )
        return Simulator(hardened, simple_arch(3), mapping)

    def test_fault_free_passive_never_runs(self):
        result = self.make().run(sampler=WorstCaseSampler())
        assert not result.entered_critical_state
        # actives [0,2], vote [2,2.5], w [2.5,3.5]
        assert result.graph_response_time("g") == pytest.approx(3.5)

    def test_fault_activates_passive_copy(self):
        result = self.make().run(
            profile=FaultProfile([("v", 0, 0)]), sampler=WorstCaseSampler()
        )
        assert result.entered_critical_state
        # actives [0,2], p0 [2,4], vote [4,4.5], w [4.5,5.5]
        assert result.graph_response_time("g") == pytest.approx(5.5)
        assert result.unsafe_events == []


class TestDropping:
    def make(self):
        critical = TaskGraph(
            "crit",
            tasks=[Task("c", 4.0, 4.0, detection_overhead=1.0)],
            channels=[],
            period=20.0,
            reliability_target=1e-6,
        )
        low = TaskGraph(
            "low",
            tasks=[Task("l", 3.0, 3.0)],
            channels=[],
            period=10.0,
            service_value=1.0,
        )
        hardened = harden(
            ApplicationSet([critical, low]),
            HardeningPlan({"c": HardeningSpec.reexecution(1)}),
        )
        mapping = Mapping({"c": "pe0", "l": "pe0"})
        return hardened, mapping

    def test_drop_set_removes_pending_instances(self):
        hardened, mapping = self.make()
        sim = Simulator(hardened, simple_arch(1), mapping, dropped=("low",))
        # l (period 10, higher priority) runs first [0,3]; c runs [3,8]
        # and faults at 8 -> critical; l@1 (release 10) is dropped.
        result = sim.run(
            profile=FaultProfile([("c", 0, 0)]), sampler=WorstCaseSampler()
        )
        dropped = result.dropped_instances()
        assert [(o.graph, o.instance) for o in dropped] == [("low", 1)]
        assert result.graph_response_time("crit") == pytest.approx(13.0)

    def test_not_in_drop_set_keeps_running(self):
        hardened, mapping = self.make()
        sim = Simulator(hardened, simple_arch(1), mapping, dropped=())
        result = sim.run(
            profile=FaultProfile([("c", 0, 0)]), sampler=WorstCaseSampler()
        )
        assert result.dropped_instances() == []
        # l@1 preempts nothing (c done by 13 > 10? l released at 10 while
        # c re-executes [8,13]; l higher priority -> c finishes at 16.
        assert result.graph_response_time("crit") == pytest.approx(16.0)

    def test_restoration_at_hyperperiod(self):
        hardened, mapping = self.make()
        sim = Simulator(hardened, simple_arch(1), mapping, dropped=("low",))
        result = sim.run(
            profile=FaultProfile([("c", 0, 0)]),
            sampler=WorstCaseSampler(),
            hyperperiods=2,
        )
        # Instances of "low" in the second hyperperiod (2, 3) survive.
        survivors = [
            o.instance
            for o in result.outcomes
            if o.graph == "low" and not o.dropped
        ]
        assert 2 in survivors and 3 in survivors

    def test_drop_from_start(self):
        hardened, mapping = self.make()
        sim = Simulator(hardened, simple_arch(1), mapping, dropped=("low",))
        result = sim.run(sampler=WorstCaseSampler(), drop_from_start=True)
        assert all(o.dropped for o in result.outcomes if o.graph == "low")
        assert result.graph_response_time("low") is None


class TestTraceCollection:
    def test_trace_events_recorded(self):
        hardened = harden(chain_apps(), HardeningPlan())
        sim = Simulator(
            hardened,
            simple_arch(),
            Mapping({"a": "pe0", "b": "pe0"}),
            collect_trace=True,
        )
        result = sim.run(sampler=WorstCaseSampler())
        kinds = {event.kind for event in result.trace}
        assert {"release", "start", "finish"} <= kinds

    def test_trace_off_by_default(self):
        hardened = harden(chain_apps(), HardeningPlan())
        sim = Simulator(hardened, simple_arch(), Mapping({"a": "pe0", "b": "pe0"}))
        assert sim.run().trace == []
