"""Unit tests for scenario generation."""

import random

from repro.verify.oracles import OracleRunner
from repro.verify.scenarios import (
    Scenario,
    directed_scenarios,
    exhaustive_scenarios,
    fault_candidates,
    generate_scenarios,
    random_scenarios,
)
from repro.sim.faults import FaultProfile


class TestScenarioSerialization:
    def test_round_trip(self):
        scenario = Scenario(
            name="s",
            origin="directed",
            profile=FaultProfile([("a", 0, 1)], label="x"),
            sampler_spec={"kind": "biased", "worst_probability": 0.7},
            sampler_seed=42,
            hyperperiods=2,
        )
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone.key() == scenario.key()
        assert clone.profile == scenario.profile
        assert clone.to_dict() == scenario.to_dict()

    def test_sampler_rebuilds_from_spec(self):
        scenario = Scenario(
            name="s",
            origin="random",
            profile=FaultProfile(),
            sampler_spec={"kind": "worst"},
        )
        assert scenario.sampler().describe() == {"kind": "worst"}


class TestGeneration:
    def test_budget_respected_and_deduplicated(self, state):
        hardened = state.hardened()
        analysis = OracleRunner().analyze(state)
        scenarios = generate_scenarios(hardened, analysis, budget=25, seed=1)
        assert len(scenarios) == 25
        keys = [s.key() for s in scenarios]
        assert len(set(keys)) == len(keys)

    def test_fault_free_scenario_first(self, state):
        analysis = OracleRunner().analyze(state)
        scenarios = generate_scenarios(state.hardened(), analysis, budget=10)
        assert len(scenarios[0].profile) == 0

    def test_deterministic_in_seed(self, state):
        hardened = state.hardened()
        analysis = OracleRunner().analyze(state)
        first = generate_scenarios(hardened, analysis, budget=30, seed=9)
        second = generate_scenarios(hardened, analysis, budget=30, seed=9)
        assert [s.to_dict() for s in first] == [s.to_dict() for s in second]
        third = generate_scenarios(hardened, analysis, budget=30, seed=10)
        assert [s.key() for s in first] != [s.key() for s in third]

    def test_directed_scenarios_target_transitions(self, state):
        analysis = OracleRunner().analyze(state)
        scenarios = directed_scenarios(state.hardened(), analysis)
        assert scenarios
        assert all(s.origin.startswith("directed") for s in scenarios)
        # every directed profile injects at least one fault
        assert all(len(s.profile) >= 1 for s in scenarios)

    def test_exhaustive_covers_every_single_fault(self, state):
        hardened = state.hardened()
        candidates = fault_candidates(hardened)
        scenarios = exhaustive_scenarios(hardened, limit=len(candidates))
        singles = {next(iter(s.profile)) for s in scenarios if len(s.profile) == 1}
        assert singles == set(candidates)

    def test_random_scenarios_reproducible(self, state):
        hardened = state.hardened()
        first = random_scenarios(hardened, 5, random.Random(3), max_faults=3)
        second = random_scenarios(hardened, 5, random.Random(3), max_faults=3)
        assert [s.to_dict() for s in first] == [s.to_dict() for s in second]
