"""Campaign-level tests: clean systems verify clean, reports determinize."""

import json

import pytest

from repro import api
from repro.errors import ReproError
from repro.suites import benchmark_names
from repro.verify.campaign import (
    CampaignConfig,
    run_campaign,
    replay_corpus,
    state_from_bundle,
)
from repro.verify.oracles import ORACLES


class TestToyCampaign:
    def test_zero_violations(self, state):
        report = run_campaign(
            state, CampaignConfig(budget=40, seed=0), label="toy"
        )
        assert report.ok
        assert len(report.scenarios) == 40
        assert report.violations == []
        assert report.reproducers == []
        assert set(report.oracles) <= set(ORACLES)
        assert report.oracles["sim-le-proposed"]["checks"] == 40

    def test_report_deterministic_in_seed_and_budget(self, state):
        config = CampaignConfig(budget=30, seed=5)
        first = run_campaign(state, config, label="toy")
        second = run_campaign(state, config, label="toy")
        assert first.to_dict() == second.to_dict()

    def test_report_json_round_trips(self, state, tmp_path):
        report = run_campaign(
            state, CampaignConfig(budget=10, seed=2), label="toy"
        )
        out = tmp_path / "report.json"
        report.write(out)
        payload = json.loads(out.read_text())
        assert payload == report.to_dict()
        assert payload["ok"] is True

    def test_config_validation(self):
        with pytest.raises(ReproError):
            CampaignConfig(budget=0)
        with pytest.raises(ReproError):
            CampaignConfig(max_shrink_checks=-1)


class TestSuiteSweep:
    @pytest.mark.parametrize("suite", benchmark_names())
    def test_suite_verifies_clean(self, suite):
        state = state_from_bundle(api.load(suite), seed=7)
        report = run_campaign(
            state, CampaignConfig(budget=25, seed=7), label=suite
        )
        assert report.ok, report.violations
        assert len(report.scenarios) == 25
        # every oracle family actually ran
        assert report.oracles["sim-le-proposed"]["checks"] == 25
        assert report.oracles["proposed-le-naive"]["checks"] == 1
        assert report.oracles["fastpath-identical"]["checks"] == 1
        assert report.oracles["warmstart-identical"]["checks"] == 1


class TestApiFacade:
    def test_verify_on_suite_name(self):
        report = api.verify("cruise", budget=15, seed=3)
        assert report.ok
        assert report.label == "cruise"
        assert report.budget == 15

    def test_same_seed_same_report(self):
        first = api.verify("cruise", budget=12, seed=4)
        second = api.verify("cruise", budget=12, seed=4)
        assert first.to_dict() == second.to_dict()


class TestReplayCorpus:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ReproError):
            replay_corpus(tmp_path / "nope")

    def test_foreign_json_skipped(self, tmp_path):
        (tmp_path / "other.json").write_text('{"schema": "something-else"}')
        report = replay_corpus(tmp_path)
        assert report.ok
        assert report.entries == []
        assert len(report.skipped) == 1
