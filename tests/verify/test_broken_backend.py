"""The harness must catch a deliberately broken schedulability back-end.

``UnderReportingBackend`` wraps the stock window analysis and scales
down every ``maxFinish`` — exactly the failure mode a subtly wrong
interference bound would produce.  The campaign's simulation oracle has
to notice, the shrinker has to produce a small reproducer, and the
reproducer has to replay deterministically from its JSON alone (the
broken back-end is *not* wired into the replay).
"""

import json

import pytest

from repro.sched.wcrt import ScheduleBounds, WindowAnalysisBackend
from repro.verify.campaign import CampaignConfig, replay_corpus, run_campaign
from repro.verify.reproducer import REPRODUCER_SCHEMA, Reproducer


class UnderReportingBackend:
    """Window analysis whose worst-case bounds are optimistically wrong."""

    def __init__(self, factor=0.7):
        self._inner = WindowAnalysisBackend()
        self._factor = factor

    def analyze(self, jobset):
        bounds = self._inner.analyze(jobset)
        count = len(jobset.jobs)
        min_start, min_finish, max_start, max_finish = [], [], [], []
        for index in range(count):
            job_bounds = bounds.bounds_at(index)
            min_start.append(job_bounds.min_start)
            min_finish.append(job_bounds.min_finish)
            max_start.append(job_bounds.max_start * self._factor)
            max_finish.append(job_bounds.max_finish * self._factor)
        return ScheduleBounds(
            jobset,
            min_start,
            min_finish,
            max_start,
            max_finish,
            bounds.converged,
            bounds.sweeps,
        )


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    from repro.verify.oracles import SystemState
    from repro.hardening.spec import HardeningPlan, HardeningSpec
    from repro.model.application import ApplicationSet
    from repro.model.architecture import (
        Architecture,
        Interconnect,
        InterconnectKind,
        Processor,
    )
    from repro.model.mapping import Mapping
    from repro.model.task import Channel, Task
    from repro.model.taskgraph import TaskGraph

    graph = TaskGraph(
        "hi",
        tasks=[
            Task("a", 1.0, 2.0, detection_overhead=0.2),
            Task("b", 2.0, 4.0, detection_overhead=0.4),
            Task("c", 1.0, 1.5, detection_overhead=0.1),
        ],
        channels=[Channel("a", "b", 10.0), Channel("b", "c", 5.0)],
        period=40.0,
        reliability_target=1e-6,
    )
    state = SystemState(
        applications=ApplicationSet([graph]),
        architecture=Architecture(
            [
                Processor("pe0", "generic", 1.0, 2.0, fault_rate=1e-5),
                Processor("pe1", "generic", 1.0, 2.0, fault_rate=1e-5),
            ],
            Interconnect(
                bandwidth=1000.0,
                base_latency=0.0,
                kind=InterconnectKind.SHARED_BUS,
            ),
        ),
        mapping=Mapping({"a": "pe0", "b": "pe0", "c": "pe1"}),
        plan=HardeningPlan({"a": HardeningSpec.reexecution(2)}),
        dropped=(),
    )
    corpus = tmp_path_factory.mktemp("corpus")
    config = CampaignConfig(
        budget=40,
        seed=0,
        backend=UnderReportingBackend(),
        corpus_dir=corpus,
        # the lattice/consistency oracles compare broken-vs-broken and
        # broken-vs-adhoc; keep the test focused on sim dominance
        metamorphic=False,
    )
    report = run_campaign(state, config, label="broken")
    return state, corpus, report


class TestBrokenBackendCaught:
    def test_violations_found(self, campaign):
        _state, _corpus, report = campaign
        assert not report.ok
        sim_hits = [
            v for v in report.violations if v["oracle"] == "sim-le-proposed"
        ]
        assert sim_hits, report.violations
        for violation in sim_hits:
            assert violation["actual"] > violation["expected"]

    def test_reproducers_written_and_shrunk(self, campaign):
        _state, corpus, report = campaign
        assert report.reproducers
        assert report.shrink_steps > 0
        scenario_reproducers = [
            r
            for r in (Reproducer.load(p) for p in report.reproducers)
            if r.kind == "scenario"
        ]
        assert scenario_reproducers
        for reproducer in scenario_reproducers:
            profile = reproducer.scenario["profile"]["faults"]
            assert len(profile) <= 2

    def test_replay_from_json_alone(self, campaign):
        _state, corpus, report = campaign
        path = report.reproducers[0]
        payload = json.loads(open(path).read())
        assert payload["schema"] == REPRODUCER_SCHEMA
        # rebuild purely from the file — no campaign objects involved
        reproducer = Reproducer.load(path)
        first = reproducer.replay()
        second = reproducer.replay()
        assert first.reproduced
        assert first.deterministic
        assert first == second

    def test_replay_corpus_flags_live_bugs(self, campaign):
        _state, corpus, _report = campaign
        replay = replay_corpus(corpus)
        assert not replay.ok
        assert replay.still_reproducing >= 1
        assert all(e["deterministic"] for e in replay.entries)


class TestHealthyBackendContrast:
    def test_same_campaign_clean_without_the_bug(self, campaign, tmp_path):
        state, _corpus, _report = campaign
        config = CampaignConfig(
            budget=40, seed=0, metamorphic=False, corpus_dir=tmp_path
        )
        report = run_campaign(state, config, label="healthy")
        assert report.ok
        assert list(tmp_path.iterdir()) == []
