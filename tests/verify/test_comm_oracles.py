"""Extended-lattice comm oracles and message-loss scenario generation."""

import dataclasses

import pytest

import repro.comm as comm_pkg
from repro.comm import CommBackend, register_backend, with_comm
from repro.hardening.spec import HardeningPlan
from repro.model.mapping import Mapping
from repro.sim.faults import FaultProfile
from repro.verify.oracles import ORACLES, OracleRunner, SystemState
from repro.verify.scenarios import Scenario, message_loss_scenarios


@pytest.fixture
def cross_state(apps, architecture):
    names = sorted(apps.all_task_names)
    mapping = Mapping({name: f"pe{i % 2}" for i, name in enumerate(names)})
    return SystemState(
        applications=apps,
        architecture=architecture,
        mapping=mapping,
        plan=HardeningPlan(),
    )


class TestCheckComm:
    def test_oracles_registered(self):
        assert "flat-le-contended" in ORACLES
        assert "arq-monotone" in ORACLES

    def test_noop_on_flat_fabric(self, cross_state):
        assert OracleRunner().check_comm(cross_state) == []

    @pytest.mark.parametrize("backend", ("shared-bus", "tdma", "noc-xy"))
    def test_clean_on_sound_backends(self, cross_state, backend):
        state = dataclasses.replace(
            cross_state,
            architecture=with_comm(
                cross_state.architecture,
                backend=backend,
                arq_retries=1,
                arq_timeout=0.5,
            ),
        )
        assert OracleRunner().check_comm(state) == []

    def test_flags_a_backend_that_tightens_bounds(self, cross_state):
        class TightBound:
            """A fabric that (unsoundly) claims communication is free."""

            fingerprint_token = "test-tight"
            arq_retries = 0
            arq_timeout = 0.0

            def channel_bounds(self, src, dst, size, same_processor):
                return 0.0, 0.0

            def attempt_bounds(self, src, dst, size, same_processor):
                return 0.0, 0.0

            def without_arq(self):
                return self

        class TightBackend(CommBackend):
            name = "test-tight"

            def bind(self, applications, mapping, architecture):
                return TightBound()

        register_backend(TightBackend)
        try:
            state = dataclasses.replace(
                cross_state,
                architecture=with_comm(
                    cross_state.architecture, backend="test-tight"
                ),
            )
            violations = OracleRunner().check_comm(state)
            assert violations, "free-fabric backend must violate the lattice"
            assert {v.oracle for v in violations} == {"flat-le-contended"}
        finally:
            del comm_pkg._REGISTRY["test-tight"]


class TestMessageScenarios:
    def test_no_mapping_means_no_scenarios(self, cross_state):
        assert message_loss_scenarios(cross_state.hardened(), None, 2) == []

    def test_local_mapping_means_no_scenarios(self, apps, cross_state):
        local = Mapping({name: "pe0" for name in apps.all_task_names})
        assert (
            message_loss_scenarios(cross_state.hardened(), local, 2) == []
        )

    def test_single_and_exhausted_profiles(self, cross_state):
        scenarios = message_loss_scenarios(
            cross_state.hardened(), cross_state.mapping, 2
        )
        assert scenarios
        by_origin = {s.origin for s in scenarios}
        assert by_origin == {"directed-message"}
        singles = [s for s in scenarios if s.name.startswith("msg-loss:")]
        exhausted = [
            s for s in scenarios if s.name.startswith("msg-exhausted:")
        ]
        assert len(singles) == len(exhausted)
        for scenario in singles:
            assert len(scenario.profile.message_faults) == 1
        for scenario in exhausted:
            # Budget k=2: attempts 0..2 all lost.
            assert len(scenario.profile.message_faults) == 3

    def test_no_exhaustion_without_retries(self, cross_state):
        scenarios = message_loss_scenarios(
            cross_state.hardened(), cross_state.mapping, 0
        )
        assert scenarios
        assert all(s.name.startswith("msg-loss:") for s in scenarios)

    def test_scenario_key_separates_message_profiles(self):
        base = Scenario(
            name="one",
            origin="directed-message",
            profile=FaultProfile((), message_faults=(("a", "b", 0, 0),)),
        )
        other = Scenario(
            name="two",
            origin="directed-message",
            profile=FaultProfile((), message_faults=(("a", "b", 0, 1),)),
        )
        assert base.key() != other.key()
