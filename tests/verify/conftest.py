"""Verification-harness fixtures built on the shared toy system."""

import pytest

from repro.verify.oracles import SystemState


@pytest.fixture
def state(apps, architecture, mapping, plan):
    """The toy two-application system as a verification target."""
    return SystemState(
        applications=apps,
        architecture=architecture,
        mapping=mapping,
        plan=plan,
        dropped=(),
    )
