"""Reproducer serialization, digests, and quarantine-log adaptation."""

import json

import pytest

from repro.errors import ReproError
from repro.verify.oracles import Violation
from repro.verify.reproducer import (
    QUARANTINE_HEADER_SCHEMA,
    REPRODUCER_SCHEMA,
    Reproducer,
    load_quarantine_reproducers,
)


@pytest.fixture
def violation():
    return Violation(
        oracle="sim-le-proposed",
        subject="hi",
        expected=10.0,
        actual=12.5,
        detail="toy",
        scenario={
            "name": "s",
            "origin": "directed",
            "profile": {"label": "", "faults": [["a", 0, 0]]},
            "sampler": {"kind": "worst"},
            "sampler_seed": 0,
            "hyperperiods": 1,
        },
    )


class TestSerialization:
    def test_round_trip(self, state, violation):
        reproducer = Reproducer.from_violation(violation, state, shrink_steps=3)
        clone = Reproducer.from_dict(reproducer.to_dict())
        assert clone == reproducer
        assert clone.digest() == reproducer.digest()

    def test_kind_from_scenario_presence(self, state, violation):
        assert Reproducer.from_violation(violation, state).kind == "scenario"
        analysis_violation = Violation(
            oracle="fastpath-identical",
            subject="hi",
            expected=1.0,
            actual=2.0,
        )
        assert (
            Reproducer.from_violation(analysis_violation, state).kind
            == "analysis"
        )

    def test_schema_enforced(self):
        with pytest.raises(ReproError):
            Reproducer.from_dict({"schema": "bogus/9"})

    def test_save_and_load(self, state, violation, tmp_path):
        reproducer = Reproducer.from_violation(violation, state)
        path = reproducer.save(tmp_path)
        assert path.name == f"reproducer-{reproducer.digest()[:12]}.json"
        assert json.loads(path.read_text())["schema"] == REPRODUCER_SCHEMA
        assert Reproducer.load(path) == reproducer

    def test_state_rebuilds(self, state, violation):
        reproducer = Reproducer.from_violation(violation, state)
        rebuilt = reproducer.state()
        assert rebuilt.to_dict() == state.to_dict()


class TestScenarioReplay:
    def test_dominating_bound_does_not_reproduce(self, state, violation):
        # a recorded bound far above any possible response: the replayed
        # observation can't beat it, so the violation reads as fixed
        payload = Reproducer.from_violation(violation, state).to_dict()
        payload["expected"] = 1e9
        outcome = Reproducer.from_dict(payload).replay()
        assert not outcome.reproduced

    def test_recorded_underreport_reproduces(self, state, violation):
        # shove the recorded bound below any possible response: the
        # violation must fire again from the JSON alone
        payload = Reproducer.from_violation(violation, state).to_dict()
        payload["expected"] = 0.0
        outcome = Reproducer.from_dict(payload).replay()
        assert outcome.reproduced
        assert outcome.actual > 0.0


class TestQuarantineAdapter:
    def _header(self, state):
        system = state.to_dict()
        return {
            "schema": QUARANTINE_HEADER_SCHEMA,
            "applications": system["applications"],
            "architecture": system["architecture"],
        }

    def _record(self, state):
        return {
            "stage": "evaluate",
            "error_type": "RuntimeError",
            "error": "boom",
            "attempts": 2,
            "design": {
                "allocation": sorted(set(state.mapping.as_dict().values())),
                "dropped": [],
                "plan": state.plan.to_dict(),
                "mapping": state.mapping.as_dict(),
            },
        }

    def test_from_quarantine(self, state):
        reproducer = Reproducer.from_quarantine(
            self._header(state), self._record(state)
        )
        assert reproducer.kind == "quarantine"
        assert reproducer.oracle == "guard-quarantine"
        # the bare assignment dict is re-wrapped into the codec envelope
        rebuilt = reproducer.state()
        assert rebuilt.mapping.as_dict() == state.mapping.as_dict()

    def test_header_schema_enforced(self, state):
        with pytest.raises(ReproError):
            Reproducer.from_quarantine({"schema": "old"}, self._record(state))

    def test_jsonl_loading(self, state, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        lines = [
            json.dumps(self._header(state)),
            json.dumps(self._record(state)),
            json.dumps({"stage": "decode", "design": None}),  # skipped
        ]
        path.write_text("\n".join(lines) + "\n")
        reproducers = load_quarantine_reproducers(path)
        assert len(reproducers) == 1
        assert reproducers[0].subject == "evaluate"

    def test_headerless_log_yields_nothing(self, state, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(self._record(state)) + "\n")
        assert load_quarantine_reproducers(path) == []

    def test_healthy_design_replays_fixed(self, state):
        reproducer = Reproducer.from_quarantine(
            self._header(state), self._record(state)
        )
        outcome = reproducer.replay()
        assert not outcome.reproduced
