"""Unit tests for hyperperiod unrolling and job sets."""

import pytest

from repro.errors import AnalysisError
from repro.model.application import ApplicationSet
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sched.jobs import unroll


@pytest.fixture
def jobset(apps, architecture, mapping):
    flat = Mapping(
        {
            "a": "pe0",
            "b": "pe0",
            "c": "pe1",
            "x": "pe2",
            "y": "pe2",
        }
    )
    return unroll(apps, flat, architecture)


class TestUnrolling:
    def test_job_counts(self, jobset):
        # hyperperiod 20, horizon 40: hi (period 20) x2, lo (period 10) x4
        hi_jobs = [j for j in jobset.jobs if j.graph_name == "hi"]
        lo_jobs = [j for j in jobset.jobs if j.graph_name == "lo"]
        assert len(hi_jobs) == 3 * 2
        assert len(lo_jobs) == 2 * 4

    def test_releases_and_deadlines(self, jobset):
        job = jobset.job(("x", 2))
        assert job.release == 20.0
        assert job.abs_deadline == 30.0

    def test_analyzed_flag_covers_first_hyperperiod(self, jobset):
        for job in jobset.jobs:
            assert job.analyzed == (job.release < 20.0)

    def test_horizon(self, jobset):
        assert jobset.hyperperiod == 20.0
        assert jobset.horizon == 40.0

    def test_single_hyperperiod_unroll(self, apps, architecture):
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        js = unroll(apps, flat, architecture, hyperperiods=1)
        assert js.horizon == 20.0
        assert all(job.analyzed for job in js.jobs)

    def test_invalid_hyperperiods_rejected(self, apps, architecture):
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        with pytest.raises(AnalysisError):
            unroll(apps, flat, architecture, hyperperiods=0)

    def test_precedence_within_instance(self, jobset):
        job_b = jobset.job(("b", 1))
        pred_indices = {p[0] for p in job_b.preds}
        assert pred_indices == {jobset.job(("a", 1)).index}

    def test_priorities_unique(self, jobset):
        priorities = [job.priority for job in jobset.jobs]
        assert len(set(priorities)) == len(priorities)

    def test_task_level_bounds_override(self, apps, architecture):
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        js = unroll(apps, flat, architecture, bounds={"a": (0.0, 9.0)})
        for job in js.jobs_of_task("a"):
            assert (job.bcet, job.wcet) == (0.0, 9.0)

    def test_speed_scaling(self, apps):
        from repro.model.architecture import Architecture, Interconnect, Processor

        arch = Architecture(
            [Processor("fast", speed=2.0)], Interconnect(bandwidth=100.0)
        )
        flat = Mapping({t: "fast" for t in apps.all_task_names})
        js = unroll(apps, flat, arch)
        job = js.jobs_of_task("b")[0]
        assert job.wcet == pytest.approx(2.0)  # 4.0 / speed 2


class TestWithBounds:
    def test_override_applies(self, jobset):
        clone = jobset.with_bounds({("a", 0): (0.5, 1.0)})
        assert clone.job(("a", 0)).wcet == 1.0
        assert jobset.job(("a", 0)).wcet == 2.0  # original untouched

    def test_override_second_hyperperiod_rejected(self, jobset):
        with pytest.raises(AnalysisError, match="second hyperperiod"):
            jobset.with_bounds({("a", 1): (0.0, 1.0)})

    def test_override_unknown_job_rejected(self, jobset):
        with pytest.raises(AnalysisError, match="unknown job"):
            jobset.with_bounds({("ghost", 0): (0.0, 1.0)})

    def test_invalid_bounds_rejected(self, jobset):
        with pytest.raises(AnalysisError, match="invalid bounds"):
            jobset.with_bounds({("a", 0): (2.0, 1.0)})

    def test_empty_override_returns_same_object(self, jobset):
        assert jobset.with_bounds({}) is jobset


class TestInterferenceStructure:
    def test_hp_lists_exclude_ancestors_and_descendants(self, jobset):
        # a -> b on pe0: b's hp list must not contain a's jobs of the
        # same instance (ancestor), and vice versa (descendant).
        job_a = jobset.job(("a", 0))
        job_b = jobset.job(("b", 0))
        assert job_a.index not in jobset.higher_priority_on_same_pe(job_b.index)
        assert job_b.index not in jobset.higher_priority_on_same_pe(job_a.index)

    def test_hp_lists_contain_cross_instance_jobs(self, jobset):
        job_b0 = jobset.job(("b", 0))
        job_b1 = jobset.job(("b", 1))
        hp_of_b1 = jobset.higher_priority_on_same_pe(job_b1.index)
        assert job_b0.index in hp_of_b1

    def test_hp_lists_are_actually_higher_priority(self, jobset):
        for job in jobset.jobs:
            for other in jobset.higher_priority_on_same_pe(job.index):
                assert jobset.jobs[other].priority < job.priority
                assert jobset.jobs[other].processor == job.processor


class TestBatches:
    def test_batches_partition_jobs(self, jobset):
        seen = set()
        for batch in jobset.batches():
            for member in batch.members:
                assert member not in seen
                seen.add(member)
        assert seen == set(range(len(jobset)))

    def test_batch_members_share_instance_and_pe(self, jobset):
        for batch in jobset.batches():
            keys = {
                (
                    jobset.jobs[m].graph_name,
                    jobset.jobs[m].instance,
                    jobset.jobs[m].processor,
                )
                for m in batch.members
            }
            assert len(keys) == 1

    def test_batch_interferers_exclude_member_ancestors(self, apps, architecture):
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        js = unroll(apps, flat, architecture)
        job_a0 = js.job(("a", 0))
        for batch in js.batches():
            if js.job(("c", 0)).index in batch.members:
                assert job_a0.index not in batch.interferers

    def test_batches_cached_across_clones(self, jobset):
        batches = jobset.batches()
        clone = jobset.with_bounds({("a", 0): (0.0, 1.0)})
        assert clone.batches() is batches

    def test_reentrant_split(self, hardened, architecture, mapping):
        # b's voter waits for off-processor copies of b while sharing
        # pe0 with b itself -> the pe0 group of graph "hi" must be split.
        js = unroll(hardened.applications, mapping, architecture)
        vote_index = js.job(("b#vote", 0)).index
        b_index = js.job(("b", 0)).index
        for batch in js.batches():
            if vote_index in batch.members:
                assert b_index not in batch.members
