"""Equivalence tests: the numpy backend must match the reference backend."""

import random
import time

import pytest

from repro.benchgen.tgff import GraphShape, TgffConfig, generate_problem
from repro.core.analysis import MixedCriticalityAnalysis
from repro.dse.chromosome import random_chromosome
from repro.dse.repair import repair
from repro.hardening.transform import harden
from repro.sched.fast import FastWindowAnalysisBackend
from repro.sched.jobs import unroll
from repro.sched.wcrt import WindowAnalysisBackend


def random_jobset(seed):
    problem = generate_problem(
        seed=seed,
        critical_graphs=1,
        droppable_graphs=2,
        processors=3,
        config=TgffConfig(
            shape=GraphShape(min_tasks=2, max_tasks=5, min_layers=1, max_layers=3),
        ),
        name_prefix=f"fast{seed}",
    )
    rng = random.Random(seed)
    chromosome = repair(random_chromosome(problem, rng), problem, rng)
    design = chromosome.decode(problem)
    hardened = harden(problem.applications, design.plan)
    bounds = {
        task.name: hardened.nominal_bounds(task.name)
        for task in hardened.applications.all_tasks
    }
    for passive in hardened.passive_tasks:
        bounds[passive] = (0.0, 0.0)
    return unroll(
        hardened.applications, design.mapping, problem.architecture, bounds=bounds
    )


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_backend(self, seed):
        jobset = random_jobset(seed)
        reference = WindowAnalysisBackend().analyze(jobset)
        fast = FastWindowAnalysisBackend().analyze(jobset)
        for job in jobset.jobs:
            ref = reference.bounds_at(job.index)
            got = fast.bounds_at(job.index)
            assert got.min_start == pytest.approx(ref.min_start, abs=1e-9)
            assert got.min_finish == pytest.approx(ref.min_finish, abs=1e-9)
            assert got.max_finish == pytest.approx(ref.max_finish, abs=1e-6), (
                f"seed {seed}, job {job.job_id}"
            )

    def test_matches_on_bound_overrides(self):
        jobset = random_jobset(3)
        target = jobset.analyzed_jobs[0]
        clone = jobset.with_bounds({target.job_id: (0.0, target.wcet * 3)})
        reference = WindowAnalysisBackend().analyze(clone)
        backend = FastWindowAnalysisBackend()
        backend.analyze(jobset)  # warm the structural cache
        fast = backend.analyze(clone)  # reuses structure, new bounds
        for job in clone.jobs:
            assert fast.bounds_at(job.index).max_finish == pytest.approx(
                reference.bounds_at(job.index).max_finish, abs=1e-6
            )

    def test_structural_cache_resets_between_jobsets(self):
        backend = FastWindowAnalysisBackend()
        a = random_jobset(4)
        b = random_jobset(5)
        result_a = backend.analyze(a)
        result_b = backend.analyze(b)
        reference_b = WindowAnalysisBackend().analyze(b)
        for job in b.jobs:
            assert result_b.bounds_at(job.index).max_finish == pytest.approx(
                reference_b.bounds_at(job.index).max_finish, abs=1e-6
            )
        assert result_a.jobset is a and result_b.jobset is b


class TestWithinAlgorithmOne:
    def test_same_wcrt_through_algorithm1(self, hardened, architecture, mapping):
        reference = MixedCriticalityAnalysis().analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        fast = MixedCriticalityAnalysis(
            backend=FastWindowAnalysisBackend()
        ).analyze(hardened, architecture, mapping, dropped=("lo",))
        for graph in hardened.applications.graph_names:
            assert fast.wcrt_of(graph) == pytest.approx(
                reference.wcrt_of(graph), abs=1e-6
            )

    def test_cruise_agreement(self):
        from repro.experiments.table2 import TABLE2_DROPPED
        from repro.suites.cruise import cruise_benchmark, cruise_sample_mappings

        hardened, mappings = cruise_sample_mappings()
        arch = cruise_benchmark().problem.architecture
        reference = MixedCriticalityAnalysis().analyze(
            hardened, arch, mappings[0], TABLE2_DROPPED
        )
        fast = MixedCriticalityAnalysis(
            backend=FastWindowAnalysisBackend()
        ).analyze(hardened, arch, mappings[0], TABLE2_DROPPED)
        for app in ("cc", "mon"):
            assert fast.wcrt_of(app) == pytest.approx(
                reference.wcrt_of(app), abs=1e-6
            )
