"""Tests for the EDF local scheduling policy."""

import random

import pytest

from repro.core.analysis import MixedCriticalityAnalysis
from repro.errors import AnalysisError
from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import homogeneous_architecture
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sched.jobs import unroll
from repro.sim.engine import Simulator
from repro.sim.montecarlo import MonteCarloEstimator
from repro.sim.sampler import WorstCaseSampler


def two_tasks(deadline_a=6.0, deadline_b=20.0):
    a = TaskGraph(
        "ga", [Task("ta", 3.0, 3.0)], [], period=20.0, deadline=deadline_a,
        reliability_target=1e-6,
    )
    b = TaskGraph(
        "gb", [Task("tb", 4.0, 4.0)], [], period=20.0, deadline=deadline_b,
        service_value=1.0,
    )
    return ApplicationSet([a, b])


class TestUnrollPolicy:
    def test_invalid_policy_rejected(self, apps, architecture):
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        with pytest.raises(AnalysisError):
            unroll(apps, flat, architecture, policy="round-robin")

    def test_edf_ranks_by_absolute_deadline(self):
        apps = two_tasks(deadline_a=6.0, deadline_b=20.0)
        arch = homogeneous_architecture(1)
        flat = Mapping({"ta": "pe0", "tb": "pe0"})
        jobset = unroll(apps, flat, arch, policy="edf")
        job_a = jobset.job(("ta", 0))
        job_b = jobset.job(("tb", 0))
        assert job_a.priority < job_b.priority  # deadline 6 beats 20

    def test_fp_ignores_deadlines(self):
        # Under FP the rate-monotonic keys tie (same period); criticality
        # breaks the tie in favour of the critical graph regardless of
        # its deadline.
        apps = two_tasks(deadline_a=20.0, deadline_b=6.0)
        arch = homogeneous_architecture(1)
        flat = Mapping({"ta": "pe0", "tb": "pe0"})
        jobset = unroll(apps, flat, arch, policy="fp")
        assert jobset.job(("ta", 0)).priority < jobset.job(("tb", 0)).priority

    def test_edf_can_flip_the_order(self):
        apps = two_tasks(deadline_a=20.0, deadline_b=6.0)
        arch = homogeneous_architecture(1)
        flat = Mapping({"ta": "pe0", "tb": "pe0"})
        jobset = unroll(apps, flat, arch, policy="edf")
        assert jobset.job(("tb", 0)).priority < jobset.job(("ta", 0)).priority


class TestEdfEndToEnd:
    def test_edf_rescues_a_tight_deadline(self):
        # Under FP the critical task runs first (criticality tie-break)
        # and the droppable one with the 6 ms deadline misses; EDF runs
        # the urgent job first and both meet their deadlines.
        apps = two_tasks(deadline_a=20.0, deadline_b=6.0)
        arch = homogeneous_architecture(1)
        flat = Mapping({"ta": "pe0", "tb": "pe0"})
        hardened = harden(apps, HardeningPlan())

        fp = Simulator(hardened, arch, flat, policy="fp").run(
            sampler=WorstCaseSampler()
        )
        edf = Simulator(hardened, arch, flat, policy="edf").run(
            sampler=WorstCaseSampler()
        )
        assert fp.graph_response_time("gb") == pytest.approx(7.0)  # misses 6
        assert edf.graph_response_time("gb") == pytest.approx(4.0)
        assert edf.graph_response_time("ga") == pytest.approx(7.0)

    def test_analysis_matches_policy(self):
        apps = two_tasks(deadline_a=20.0, deadline_b=6.0)
        arch = homogeneous_architecture(1)
        flat = Mapping({"ta": "pe0", "tb": "pe0"})
        hardened = harden(apps, HardeningPlan())
        fp = MixedCriticalityAnalysis(policy="fp").analyze(hardened, arch, flat)
        edf = MixedCriticalityAnalysis(policy="edf").analyze(hardened, arch, flat)
        assert not fp.verdicts["gb"].meets_deadline
        assert edf.schedulable

    def test_edf_analysis_bounds_edf_simulation(self, hardened, architecture, mapping):
        analysis = MixedCriticalityAnalysis(policy="edf").analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        simulator = Simulator(
            hardened, architecture, mapping, dropped=("lo",), policy="edf"
        )
        estimate = MonteCarloEstimator(simulator).estimate(profiles=40, seed=9)
        for graph, observed in estimate.worst_response.items():
            if graph == "lo":
                continue
            assert analysis.wcrt_of(graph) >= observed - 1e-6
