"""Unit tests for the rate-monotonic priority assignment."""

from repro.model.application import ApplicationSet
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sched.priority import assign_priorities


def make_apps():
    fast_low = TaskGraph(
        "fast_low",
        tasks=[Task("fl0", 1, 2), Task("fl1", 1, 2)],
        channels=[Channel("fl0", "fl1", 1.0)],
        period=10.0,
        service_value=1.0,
    )
    slow_high = TaskGraph(
        "slow_high",
        tasks=[Task("sh0", 1, 2), Task("sh1", 1, 2)],
        channels=[Channel("sh0", "sh1", 1.0)],
        period=20.0,
        reliability_target=1e-6,
    )
    slow_low = TaskGraph(
        "slow_low",
        tasks=[Task("sl0", 1, 2)],
        channels=[],
        period=20.0,
        service_value=1.0,
    )
    return ApplicationSet([fast_low, slow_high, slow_low])


class TestPriorities:
    def test_unique_and_dense(self):
        priorities = assign_priorities(make_apps())
        values = sorted(priorities.values())
        assert values == list(range(len(priorities)))

    def test_rate_beats_criticality(self):
        # Short-period droppable tasks outrank long-period critical ones:
        # this is what makes task dropping useful (paper Figure 1).
        priorities = assign_priorities(make_apps())
        assert priorities["fl0"] < priorities["sh0"]

    def test_criticality_breaks_period_ties(self):
        priorities = assign_priorities(make_apps())
        assert priorities["sh0"] < priorities["sl0"]

    def test_depth_orders_within_graph(self):
        priorities = assign_priorities(make_apps())
        assert priorities["sh0"] < priorities["sh1"]
        assert priorities["fl0"] < priorities["fl1"]

    def test_deterministic(self):
        apps = make_apps()
        assert assign_priorities(apps) == assign_priorities(apps)
