"""The non-convergence fallback of the window back-ends must stay safe."""

import pytest

from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import homogeneous_architecture
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sched.fast import FastWindowAnalysisBackend
from repro.sched.jobs import unroll
from repro.sched.wcrt import WindowAnalysisBackend
from repro.sim.engine import Simulator
from repro.sim.sampler import WorstCaseSampler


@pytest.fixture
def loaded_system():
    """Several mutually interfering chains on two processors."""
    graphs = []
    for index in range(3):
        graphs.append(
            TaskGraph(
                f"g{index}",
                tasks=[
                    Task(f"g{index}a", 1.0, 3.0),
                    Task(f"g{index}b", 2.0, 4.0),
                ],
                channels=[Channel(f"g{index}a", f"g{index}b", 10.0)],
                period=40.0,
                reliability_target=1e-6,
            )
        )
    apps = ApplicationSet(graphs)
    arch = homogeneous_architecture(2)
    mapping = Mapping(
        {
            "g0a": "pe0", "g0b": "pe1",
            "g1a": "pe1", "g1b": "pe0",
            "g2a": "pe0", "g2b": "pe1",
        }
    )
    return apps, arch, mapping


@pytest.mark.parametrize("backend_cls", [WindowAnalysisBackend, FastWindowAnalysisBackend])
class TestFallback:
    def test_sweep_starved_backend_reports_nonconvergence(
        self, loaded_system, backend_cls
    ):
        apps, arch, mapping = loaded_system
        jobset = unroll(apps, mapping, arch)
        starved = backend_cls(max_sweeps=1).analyze(jobset)
        assert not starved.converged

    def test_fallback_dominates_converged_bounds(self, loaded_system, backend_cls):
        apps, arch, mapping = loaded_system
        jobset = unroll(apps, mapping, arch)
        converged = backend_cls(max_sweeps=200).analyze(jobset)
        starved = backend_cls(max_sweeps=1).analyze(jobset)
        assert converged.converged
        for job in jobset.jobs:
            assert (
                starved.bounds_at(job.index).max_finish
                >= converged.bounds_at(job.index).max_finish - 1e-9
            )

    def test_fallback_dominates_simulation(self, loaded_system, backend_cls):
        apps, arch, mapping = loaded_system
        jobset = unroll(apps, mapping, arch)
        starved = backend_cls(max_sweeps=1).analyze(jobset)
        hardened = harden(apps, HardeningPlan())
        trace = Simulator(hardened, arch, mapping).run(sampler=WorstCaseSampler())
        for graph in apps.graph_names:
            observed = trace.graph_response_time(graph)
            assert starved.graph_wcrt(graph) >= observed - 1e-9
