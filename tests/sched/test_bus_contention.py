"""Tests for the contention-aware shared-bus model."""

import pytest

from repro.core.analysis import MixedCriticalityAnalysis
from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture, Interconnect, Processor
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sched.jobs import BUS_RESOURCE, unroll
from repro.sched.wcrt import WindowAnalysisBackend


def platform(bandwidth=10.0, base_latency=0.0):
    return Architecture(
        [Processor("pe0"), Processor("pe1"), Processor("pe2")],
        Interconnect(bandwidth=bandwidth, base_latency=base_latency),
    )


def crossing_apps():
    """Two producer->consumer graphs whose transfers share the bus."""
    g1 = TaskGraph(
        "g1",
        tasks=[Task("p1", 1.0, 1.0), Task("c1", 1.0, 1.0)],
        channels=[Channel("p1", "c1", 40.0)],  # 4 ms on the bus
        period=20.0,
        reliability_target=1e-6,
    )
    g2 = TaskGraph(
        "g2",
        tasks=[Task("p2", 1.0, 1.0), Task("c2", 1.0, 1.0)],
        channels=[Channel("p2", "c2", 40.0)],
        period=10.0,
        service_value=1.0,
    )
    return ApplicationSet([g1, g2])


def crossing_mapping():
    return Mapping({"p1": "pe0", "c1": "pe1", "p2": "pe0", "c2": "pe2"})


class TestMessageJobs:
    def test_message_jobs_created(self):
        jobset = unroll(
            crossing_apps(), crossing_mapping(), platform(), bus_contention=True
        )
        bus_jobs = [j for j in jobset.jobs if j.processor == BUS_RESOURCE]
        # 2 graphs x (2 + 4) instances over two hyperperiods.
        assert len(bus_jobs) == 2 + 4
        names = {j.task_name for j in bus_jobs}
        assert names == {"p1>c1", "p2>c2"}

    def test_message_duration_is_transfer_time(self):
        jobset = unroll(
            crossing_apps(), crossing_mapping(), platform(), bus_contention=True
        )
        message = jobset.job(("p1>c1", 0))
        assert message.bcet == message.wcet == pytest.approx(4.0)

    def test_no_message_for_colocated_channel(self):
        mapping = Mapping({"p1": "pe0", "c1": "pe0", "p2": "pe1", "c2": "pe2"})
        jobset = unroll(crossing_apps(), mapping, platform(), bus_contention=True)
        names = {j.task_name for j in jobset.jobs}
        assert "p1>c1" not in names
        assert "p2>c2" in names

    def test_disabled_by_default(self):
        jobset = unroll(crossing_apps(), crossing_mapping(), platform())
        assert all(j.processor != BUS_RESOURCE for j in jobset.jobs)

    def test_message_inherits_producer_urgency(self):
        jobset = unroll(
            crossing_apps(), crossing_mapping(), platform(), bus_contention=True
        )
        # g2 has the shorter period: its producer and message outrank g1's.
        assert (
            jobset.job(("p2>c2", 0)).priority < jobset.job(("p1>c1", 0)).priority
        )
        # A message ranks directly after its own producer.
        assert (
            jobset.job(("p1", 0)).priority < jobset.job(("p1>c1", 0)).priority
        )


class TestNameCollisionGuard:
    def test_adversarial_task_name_rejected(self):
        from repro.errors import AnalysisError

        graph = TaskGraph(
            "g",
            tasks=[Task("p", 1.0, 1.0), Task("c", 1.0, 1.0), Task("p>c", 1.0, 1.0)],
            channels=[Channel("p", "c", 40.0), Channel("c", "p>c", 10.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        apps = ApplicationSet([graph])
        mapping = Mapping({"p": "pe0", "c": "pe1", "p>c": "pe2"})
        with pytest.raises(AnalysisError, match="collision"):
            unroll(apps, mapping, platform(), bus_contention=True)

    def test_same_names_fine_without_contention(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("p", 1.0, 1.0), Task("c", 1.0, 1.0), Task("p>c", 1.0, 1.0)],
            channels=[Channel("p", "c", 40.0), Channel("c", "p>c", 10.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        apps = ApplicationSet([graph])
        mapping = Mapping({"p": "pe0", "c": "pe1", "p>c": "pe2"})
        jobset = unroll(apps, mapping, platform())
        assert len(jobset) == 3 * 2


class TestContentionBounds:
    def test_contention_dominates_reservation_model(self):
        apps = crossing_apps()
        mapping = crossing_mapping()
        arch = platform()
        backend = WindowAnalysisBackend()
        reserved = backend.analyze(unroll(apps, mapping, arch))
        contended = backend.analyze(
            unroll(apps, mapping, arch, bus_contention=True)
        )
        for graph in ("g1", "g2"):
            assert contended.graph_wcrt(graph) >= reserved.graph_wcrt(graph) - 1e-9

    def test_low_priority_transfer_suffers_interference(self):
        apps = crossing_apps()
        bounds = WindowAnalysisBackend().analyze(
            unroll(apps, crossing_mapping(), platform(), bus_contention=True)
        )
        # g1's transfer (low priority) can wait for both g2 transfers in
        # the hyperperiod window: worst finish >= own path + interference.
        g1_wcrt = bounds.graph_wcrt("g1")
        assert g1_wcrt >= 1.0 + 4.0 + 4.0 + 1.0 - 1e-9

    def test_exclusive_bus_matches_reservation(self):
        # A single cross-PE transfer: contention model = latency model.
        g1 = TaskGraph(
            "solo",
            tasks=[Task("p", 1.0, 2.0), Task("c", 1.0, 1.0)],
            channels=[Channel("p", "c", 40.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        apps = ApplicationSet([g1])
        mapping = Mapping({"p": "pe0", "c": "pe1"})
        arch = platform()
        backend = WindowAnalysisBackend()
        reserved = backend.analyze(unroll(apps, mapping, arch))
        contended = backend.analyze(
            unroll(apps, mapping, arch, bus_contention=True)
        )
        assert contended.graph_wcrt("solo") == pytest.approx(
            reserved.graph_wcrt("solo")
        )


class TestThroughAlgorithmOne:
    def test_analysis_accepts_bus_contention(self, hardened, architecture, mapping):
        plain = MixedCriticalityAnalysis().analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        contended = MixedCriticalityAnalysis(bus_contention=True).analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        for graph in hardened.applications.graph_names:
            assert contended.wcrt_of(graph) >= plain.wcrt_of(graph) - 1e-9
