"""Unit tests for the communication timing model."""

import pytest

from repro.errors import ModelError
from repro.model.architecture import Interconnect
from repro.sched.comm import CommModel


@pytest.fixture
def fabric():
    return Interconnect(bandwidth=100.0, base_latency=1.0)


class TestLatencyModel:
    def test_same_processor_is_free(self, fabric):
        model = CommModel(fabric)
        assert model.best_case(1000.0, same_processor=True) == 0.0
        assert model.worst_case(1000.0, same_processor=True) == 0.0

    def test_cross_processor_transfer(self, fabric):
        model = CommModel(fabric)
        assert model.best_case(200.0, same_processor=False) == pytest.approx(3.0)
        assert model.worst_case(200.0, same_processor=False) == pytest.approx(3.0)

    def test_zero_size_best_is_free(self, fabric):
        model = CommModel(fabric)
        assert model.best_case(0.0, same_processor=False) == 0.0

    def test_zero_size_worst_charges_base_latency(self, fabric):
        model = CommModel(fabric)
        assert model.worst_case(0.0, same_processor=False) == pytest.approx(1.0)

    def test_zero_size_asymmetry_pinned(self, fabric):
        """Regression pin for the documented zero-size semantics.

        Off-processor ``size <= 0`` transfers are pure synchronisation
        tokens: best-case they ride an open arbitration window (0.0),
        worst-case they still pay one arbitration round —
        ``base_latency * contention_factor`` — never the bandwidth term.
        """
        model = CommModel(fabric, contention_factor=2.5)
        for size in (0.0, -1.0, -1e6):
            assert model.best_case(size, same_processor=False) == 0.0
            assert model.worst_case(size, same_processor=False) == (
                pytest.approx(fabric.base_latency * 2.5)
            )


class TestContention:
    def test_factor_stretches_worst_case_only(self, fabric):
        model = CommModel(fabric, contention_factor=2.0)
        assert model.worst_case(200.0, same_processor=False) == pytest.approx(6.0)
        assert model.best_case(200.0, same_processor=False) == pytest.approx(3.0)

    def test_factor_below_one_rejected(self, fabric):
        with pytest.raises(ModelError):
            CommModel(fabric, contention_factor=0.5)

    def test_best_never_exceeds_worst(self, fabric):
        model = CommModel(fabric, contention_factor=3.0)
        for size in (0.0, 1.0, 100.0, 1e4):
            assert model.best_case(size, False) <= model.worst_case(size, False)
