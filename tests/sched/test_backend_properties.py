"""Property-based invariants of the schedulability back-ends."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.tgff import GraphShape, TgffConfig, generate_problem
from repro.dse.chromosome import heuristic_chromosome
from repro.hardening.transform import harden
from repro.sched.fast import FastWindowAnalysisBackend
from repro.sched.holistic import HolisticAnalysisBackend
from repro.sched.jobs import unroll
from repro.sched.wcrt import WindowAnalysisBackend


def make_jobset(seed, policy="fp"):
    problem = generate_problem(
        seed=seed,
        critical_graphs=1,
        droppable_graphs=1,
        processors=3,
        config=TgffConfig(
            shape=GraphShape(min_tasks=2, max_tasks=5, min_layers=1, max_layers=3),
        ),
        name_prefix=f"prop{seed}",
    )
    chromosome = heuristic_chromosome(problem, random.Random(seed))
    design = chromosome.decode(problem)
    hardened = harden(problem.applications, design.plan)
    bounds = {
        task.name: hardened.nominal_bounds(task.name)
        for task in hardened.applications.all_tasks
    }
    return unroll(
        hardened.applications,
        design.mapping,
        problem.architecture,
        bounds=bounds,
        policy=policy,
    )


BACKENDS = [WindowAnalysisBackend, FastWindowAnalysisBackend, HolisticAnalysisBackend]


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=30, deadline=None)
def test_window_backend_bound_ordering(seed):
    jobset = make_jobset(seed)
    bounds = WindowAnalysisBackend().analyze(jobset)
    for job in jobset.jobs:
        jb = bounds.bounds_at(job.index)
        assert job.release <= jb.min_start + 1e-9
        assert jb.min_start <= jb.min_finish + 1e-9
        assert jb.min_finish <= jb.max_finish + 1e-9
        # A job finishes no earlier than arrival + its own wcet lower
        # bound applied to the best case.
        assert jb.max_finish >= jb.min_start + job.wcet - 1e-9 or job.wcet == 0


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=20, deadline=None)
def test_backends_agree_on_best_case(seed):
    jobset = make_jobset(seed)
    results = [cls().analyze(jobset) for cls in BACKENDS]
    for job in jobset.jobs:
        starts = {round(r.bounds_at(job.index).min_start, 9) for r in results}
        assert len(starts) == 1  # identical best-case pass


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=20, deadline=None)
def test_wcet_inflation_is_monotone(seed):
    jobset = make_jobset(seed)
    backend = WindowAnalysisBackend()
    reference = backend.analyze(jobset)
    target = jobset.analyzed_jobs[seed % len(jobset.analyzed_jobs)]
    inflated = backend.analyze(
        jobset.with_bounds({target.job_id: (target.bcet, target.wcet * 2 + 1)})
    )
    for job in jobset.jobs:
        assert (
            inflated.bounds_at(job.index).max_finish
            >= reference.bounds_at(job.index).max_finish - 1e-9
        )


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=20, deadline=None)
def test_second_hyperperiod_mirrors_first_in_normal_state(seed):
    # With nominal bounds everywhere, instance k+H behaves like instance k
    # shifted by the hyperperiod (the steady-state periodicity the
    # two-hyperperiod horizon relies on).
    jobset = make_jobset(seed)
    bounds = WindowAnalysisBackend().analyze(jobset)
    hyperperiod = jobset.hyperperiod
    for job in jobset.analyzed_jobs:
        graph = jobset.applications.graph(job.graph_name)
        shifted_instance = job.instance + int(round(hyperperiod / graph.period))
        try:
            twin = jobset.job((job.task_name, shifted_instance))
        except Exception:
            continue
        first = bounds.bounds_at(job.index)
        second = bounds.bounds_at(twin.index)
        # The second hyperperiod may only look *worse* (it lacks a guard
        # hyperperiod after it... it actually sees less interference ahead,
        # so it can be equal or smaller); the first-hyperperiod verdicts
        # must never be the optimistic ones.
        assert second.min_start == pytest.approx(first.min_start + hyperperiod)
        assert second.max_finish <= first.max_finish + hyperperiod + 1e-6
