"""Unit tests for the window-based schedulability back-end."""

import random

import pytest

from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture, Interconnect, Processor
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sched.jobs import unroll
from repro.sched.wcrt import WindowAnalysisBackend


def arch(n=2, bandwidth=10.0, base_latency=0.0):
    return Architecture(
        [Processor(f"pe{i}") for i in range(n)],
        Interconnect(bandwidth=bandwidth, base_latency=base_latency),
    )


def analyze(apps, mapping, architecture, **kwargs):
    jobset = unroll(apps, mapping, architecture, **kwargs)
    return jobset, WindowAnalysisBackend().analyze(jobset)


class TestIsolatedTask:
    def test_exact_bounds(self):
        graph = TaskGraph(
            "g", [Task("t", 2.0, 5.0)], [], period=10.0, service_value=1.0
        )
        apps = ApplicationSet([graph])
        jobset, bounds = analyze(apps, Mapping({"t": "pe0"}), arch())
        jb = bounds.job_bounds(("t", 0))
        assert jb.min_start == 0.0
        assert jb.min_finish == 2.0
        assert jb.max_finish == 5.0
        assert bounds.converged
        assert bounds.graph_wcrt("g") == 5.0

    def test_second_instance_offsets(self):
        graph = TaskGraph(
            "g", [Task("t", 2.0, 5.0)], [], period=10.0, service_value=1.0
        )
        apps = ApplicationSet([graph])
        _jobset, bounds = analyze(apps, Mapping({"t": "pe0"}), arch())
        jb = bounds.job_bounds(("t", 1))
        assert jb.min_start == 10.0
        assert jb.max_finish == 15.0


class TestChain:
    def test_same_pe_chain_exact(self):
        graph = TaskGraph(
            "g",
            [Task("a", 1.0, 2.0), Task("b", 2.0, 3.0)],
            [Channel("a", "b", 0.0)],
            period=20.0,
            service_value=1.0,
        )
        apps = ApplicationSet([graph])
        _jobset, bounds = analyze(apps, Mapping({"a": "pe0", "b": "pe0"}), arch())
        jb = bounds.job_bounds(("b", 0))
        assert jb.min_start == 1.0
        assert jb.min_finish == 3.0
        assert jb.max_finish == 5.0

    def test_cross_pe_chain_includes_comm(self):
        graph = TaskGraph(
            "g",
            [Task("a", 1.0, 2.0), Task("b", 2.0, 3.0)],
            [Channel("a", "b", 20.0)],  # 20 bytes / 10 per ms = 2 ms
            period=20.0,
            service_value=1.0,
        )
        apps = ApplicationSet([graph])
        _jobset, bounds = analyze(apps, Mapping({"a": "pe0", "b": "pe1"}), arch())
        jb = bounds.job_bounds(("b", 0))
        assert jb.min_start == pytest.approx(3.0)  # 1 + 2
        assert jb.max_finish == pytest.approx(7.0)  # 2 + 2 + 3


class TestInterference:
    def make_two_tasks(self, period_fast=10.0, period_slow=20.0):
        fast = TaskGraph(
            "fast", [Task("f", 1.0, 2.0)], [], period=period_fast, service_value=1.0
        )
        slow = TaskGraph(
            "slow", [Task("s", 3.0, 6.0)], [], period=period_slow,
            reliability_target=1e-6,
        )
        return ApplicationSet([fast, slow])

    def test_low_priority_suffers_interference(self):
        apps = self.make_two_tasks()
        _jobset, bounds = analyze(
            apps, Mapping({"f": "pe0", "s": "pe0"}), arch(1)
        )
        # f (period 10) outranks s: s can be delayed by overlapping f jobs.
        jb_s = bounds.job_bounds(("s", 0))
        assert jb_s.max_finish >= 6.0 + 2.0
        # f itself is never delayed by s (preemptive fixed priority).
        jb_f = bounds.job_bounds(("f", 0))
        assert jb_f.max_finish == pytest.approx(2.0)

    def test_separate_pes_no_interference(self):
        apps = self.make_two_tasks()
        _jobset, bounds = analyze(
            apps, Mapping({"f": "pe0", "s": "pe1"}), arch(2)
        )
        assert bounds.job_bounds(("s", 0)).max_finish == pytest.approx(6.0)

    def test_bounds_are_ordered(self, hardened, architecture, mapping):
        nominal = {
            t.name: hardened.nominal_bounds(t.name)
            for t in hardened.applications.all_tasks
        }
        for passive in hardened.passive_tasks:
            nominal[passive] = (0.0, 0.0)
        jobset = unroll(hardened.applications, mapping, architecture, bounds=nominal)
        bounds = WindowAnalysisBackend().analyze(jobset)
        for job in jobset.jobs:
            jb = bounds.bounds_at(job.index)
            assert jb.min_start <= jb.min_finish <= jb.max_finish + 1e-9
            assert jb.min_start >= job.release


class TestAggregation:
    def test_task_aggregates(self, apps, architecture):
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        jobset, bounds = (lambda js: (js, WindowAnalysisBackend().analyze(js)))(
            unroll(apps, flat, architecture)
        )
        jobs = jobset.analyzed_jobs_of_task("x")
        assert bounds.task_min_start("x") == min(
            bounds.bounds_at(j.index).min_start for j in jobs
        )
        assert bounds.task_max_finish("x") == max(
            bounds.bounds_at(j.index).max_finish for j in jobs
        )

    def test_deadline_misses(self):
        graph = TaskGraph(
            "g", [Task("t", 5.0, 50.0)], [], period=60.0, deadline=10.0,
            service_value=1.0,
        )
        apps = ApplicationSet([graph])
        jobset = unroll(apps, Mapping({"t": "pe0"}), arch(1))
        bounds = WindowAnalysisBackend().analyze(jobset)
        assert ("t", 0) in bounds.deadline_misses()
        assert bounds.deadline_misses(include_graphs=["other"]) == []


class TestMonotonicity:
    def test_larger_wcet_never_shrinks_bounds(self, apps, architecture):
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        base = unroll(apps, flat, architecture)
        backend = WindowAnalysisBackend()
        reference = backend.analyze(base)
        inflated = backend.analyze(base.with_bounds({("a", 0): (1.0, 8.0)}))
        for job in base.analyzed_jobs:
            assert (
                inflated.bounds_at(job.index).max_finish
                >= reference.bounds_at(job.index).max_finish - 1e-9
            )
