"""Tests for the holistic (jitter-propagation) alternative back-end."""

import random

import pytest

from repro.core.analysis import MixedCriticalityAnalysis
from repro.model.application import ApplicationSet
from repro.model.architecture import homogeneous_architecture
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sched.holistic import HolisticAnalysisBackend
from repro.sched.jobs import unroll
from repro.sched.wcrt import WindowAnalysisBackend
from repro.sim.engine import Simulator
from repro.sim.montecarlo import MonteCarloEstimator
from repro.sim.sampler import WorstCaseSampler
from tests.integration.test_safety import build_system


class TestIsolatedCases:
    def test_single_task_exact(self):
        graph = TaskGraph(
            "g", [Task("t", 2.0, 5.0)], [], period=10.0, service_value=1.0
        )
        apps = ApplicationSet([graph])
        jobset = unroll(apps, Mapping({"t": "pe0"}), homogeneous_architecture(1))
        bounds = HolisticAnalysisBackend().analyze(jobset)
        jb = bounds.job_bounds(("t", 0))
        assert jb.min_start == 0.0
        assert jb.max_finish == pytest.approx(5.0)
        jb1 = bounds.job_bounds(("t", 1))
        assert jb1.max_finish == pytest.approx(15.0)

    def test_chain_jitter_propagation(self):
        graph = TaskGraph(
            "g",
            [Task("a", 1.0, 2.0), Task("b", 2.0, 3.0)],
            [Channel("a", "b", 0.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        apps = ApplicationSet([graph])
        jobset = unroll(
            apps, Mapping({"a": "pe0", "b": "pe1"}), homogeneous_architecture(2)
        )
        bounds = HolisticAnalysisBackend().analyze(jobset)
        # b's jitter = R_a = 2, so finish <= 2 + 3.
        assert bounds.job_bounds(("b", 0)).max_finish == pytest.approx(5.0)

    def test_interference_uses_ceil_terms(self):
        fast = TaskGraph(
            "fast", [Task("f", 1.0, 2.0)], [], period=10.0, service_value=1.0
        )
        slow = TaskGraph(
            "slow", [Task("s", 3.0, 6.0)], [], period=40.0,
            reliability_target=1e-6,
        )
        apps = ApplicationSet([fast, slow])
        jobset = unroll(
            apps, Mapping({"f": "pe0", "s": "pe0"}), homogeneous_architecture(1)
        )
        bounds = HolisticAnalysisBackend().analyze(jobset)
        # R_s = 6 + ceil(R_s/10)*2 -> 8.
        assert bounds.job_bounds(("s", 0)).max_finish == pytest.approx(8.0)

    def test_overload_is_capped_not_divergent(self):
        hog = TaskGraph(
            "hog", [Task("h", 8.0, 12.0)], [], period=10.0, service_value=1.0
        )
        victim = TaskGraph(
            "victim", [Task("v", 1.0, 2.0)], [], period=40.0,
            reliability_target=1e-6,
        )
        apps = ApplicationSet([hog, victim])
        jobset = unroll(
            apps, Mapping({"h": "pe0", "v": "pe0"}), homogeneous_architecture(1)
        )
        bounds = HolisticAnalysisBackend().analyze(jobset)
        assert bounds.graph_wcrt("victim") > 40.0  # surfaces as infeasible
        assert bounds.graph_wcrt("victim") < 1e6


class TestSafetyAndComparison:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_bounds_dominate_simulation(self, seed):
        problem, design, hardened = build_system(seed)
        analysis = MixedCriticalityAnalysis(
            backend=HolisticAnalysisBackend()
        ).analyze(
            hardened, problem.architecture, design.mapping, dropped=design.dropped
        )
        simulator = Simulator(
            hardened,
            problem.architecture,
            design.mapping,
            dropped=tuple(design.dropped),
        )
        estimate = MonteCarloEstimator(simulator).estimate(profiles=40, seed=seed)
        for graph, observed in estimate.worst_response.items():
            if graph in design.dropped:
                continue
            assert analysis.wcrt_of(graph) >= observed - 1e-6, (seed, graph)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_typically_looser_than_window_backend(self, seed):
        problem, design, hardened = build_system(seed)
        window = MixedCriticalityAnalysis().analyze(
            hardened, problem.architecture, design.mapping, dropped=design.dropped
        )
        holistic = MixedCriticalityAnalysis(
            backend=HolisticAnalysisBackend()
        ).analyze(
            hardened, problem.architecture, design.mapping, dropped=design.dropped
        )
        # Not a theorem, but holds across these seeds for the graph-level
        # maxima: the task-level ceil interference can only over-count.
        window_total = sum(
            window.wcrt_of(g.name)
            for g in hardened.applications.graphs
            if g.name not in design.dropped
        )
        holistic_total = sum(
            holistic.wcrt_of(g.name)
            for g in hardened.applications.graphs
            if g.name not in design.dropped
        )
        assert holistic_total >= window_total - 1e-6


class TestThroughAlgorithmOne:
    def test_plugs_into_algorithm1(self, hardened, architecture, mapping):
        result = MixedCriticalityAnalysis(
            backend=HolisticAnalysisBackend()
        ).analyze(hardened, architecture, mapping, dropped=("lo",))
        assert result.transitions_analyzed == 2
        window = MixedCriticalityAnalysis().analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        assert result.wcrt_of("hi") >= window.verdicts["hi"].normal_wcrt - 1e-6
