"""Supervisor mechanics with scripted stand-in workers.

Real ``repro serve`` workers take seconds to import and bind; these
tests drive the supervisor with tiny ``python -c`` stand-ins (the
appended ``--host/--port/...`` flags land in ``sys.argv`` unread) so
spawn, restart-backoff, drain, and kill paths run in milliseconds.
"""

import json
import os
import signal
import sys
import time

import pytest

from repro.errors import ReproError
from repro.serve.supervisor import Supervisor, SupervisorConfig

_GRACEFUL = (
    "import signal, sys, time\n"
    "signal.signal(signal.SIGTERM, lambda *a: sys.exit(0))\n"
    "while True:\n"
    "    time.sleep(0.05)\n"
)

_STUBBORN = (
    "import signal, time\n"
    "signal.signal(signal.SIGTERM, signal.SIG_IGN)\n"
    "while True:\n"
    "    time.sleep(0.05)\n"
)


def _config(script, **overrides):
    defaults = dict(
        processes=2,
        drain_timeout=10.0,
        backoff_base=0.05,
        backoff_cap=0.2,
        poll_seconds=0.01,
    )
    defaults.update(overrides)
    return SupervisorConfig([sys.executable, "-c", script], **defaults)


class TestLifecycle:
    def test_fleet_starts_publishes_status_and_drains_clean(self, tmp_path):
        status_path = tmp_path / "supervisor.json"
        supervisor = Supervisor(
            _config(_GRACEFUL, status_path=str(status_path))
        )
        try:
            supervisor.start()
            assert supervisor.port > 0
            assert supervisor.url.endswith(str(supervisor.port))
            pids = supervisor.worker_pids()
            assert len(pids) == 2 and len(set(pids)) == 2

            published = json.loads(status_path.read_text())
            assert published["pid"] == os.getpid()
            assert published["port"] == supervisor.port
            assert published["stopping"] is False
            assert [w["state"] for w in published["workers"]] == [
                "running",
                "running",
            ]
            # Give the stand-ins a beat to install their SIGTERM
            # handlers, then drain.
            time.sleep(0.3)
            assert supervisor.stop() == 0
        finally:
            supervisor.stop()

        final = json.loads(status_path.read_text())
        assert final["stopping"] is True
        assert all(w["state"] == "stopped" for w in final["workers"])
        assert supervisor.worker_pids() == []

    def test_crashing_worker_restarts_with_backoff(self, tmp_path):
        supervisor = Supervisor(
            _config(
                "import sys; sys.exit(3)",
                processes=1,
                backoff_base=0.2,
                backoff_cap=10.0,
            )
        )
        try:
            supervisor.start()
            started = time.monotonic()
            deadline = started + 30.0
            while supervisor._restarts_total < 3:
                assert time.monotonic() < deadline, "no restarts observed"
                supervisor._reap_and_heal()
                time.sleep(0.02)
            elapsed = time.monotonic() - started
            slot = supervisor._slots[0]
            assert slot.last_exit_code == 3
            assert slot.restarts >= 3
            assert supervisor.status()["restarts_total"] >= 3
            # Exponential backoff: three respawns at base 0.2 wait at
            # least 0.2 + 0.4 in total (loose bound for slow CI).
            assert elapsed >= 0.5
        finally:
            supervisor.stop()

    def test_healthy_uptime_resets_failure_streak(self):
        supervisor = Supervisor(
            _config(_GRACEFUL, processes=1, healthy_after_seconds=0.05)
        )
        try:
            supervisor.start()
            slot = supervisor._slots[0]
            slot.consecutive_failures = 4
            deadline = time.monotonic() + 10.0
            while slot.consecutive_failures:
                assert time.monotonic() < deadline
                time.sleep(0.02)
                supervisor._reap_and_heal()
        finally:
            supervisor.stop()

    def test_sigterm_ignoring_worker_is_killed_and_drain_unclean(self):
        supervisor = Supervisor(
            _config(_STUBBORN, processes=1, drain_timeout=0.5)
        )
        supervisor.start()
        time.sleep(0.3)  # let the stand-in install SIG_IGN
        assert supervisor.stop() == 1
        slot = supervisor._slots[0]
        assert slot.last_exit_code == -signal.SIGKILL
        assert slot.state == "stopped"


class TestPortReservation:
    def test_port_before_reserve_is_an_error(self):
        supervisor = Supervisor(_config(_GRACEFUL))
        with pytest.raises(ReproError):
            _ = supervisor.port

    @pytest.mark.skipif(
        not hasattr(__import__("socket"), "SO_REUSEPORT"),
        reason="platform lacks SO_REUSEPORT",
    )
    def test_reserve_is_idempotent(self):
        supervisor = Supervisor(_config(_GRACEFUL))
        try:
            first = supervisor.reserve()
            assert first > 0
            assert supervisor.reserve() == first
        finally:
            supervisor.stop()


class TestConfigValidation:
    def test_rejects_zero_processes(self):
        with pytest.raises(ReproError):
            SupervisorConfig(["x"], processes=0)

    def test_rejects_bad_backoff(self):
        with pytest.raises(ReproError):
            SupervisorConfig(["x"], backoff_base=0.0)
        with pytest.raises(ReproError):
            SupervisorConfig(["x"], backoff_base=1.0, backoff_cap=0.5)
