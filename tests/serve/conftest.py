"""Serve-layer fixtures: an in-process server over the toy system."""

import pytest

from repro.model.serialization import SystemBundle
from repro.serve import ReproServer, ServeClient, ServeConfig


@pytest.fixture
def bundle(apps, architecture, mapping, plan):
    """The toy system as a fully mapped bundle."""
    return SystemBundle(apps, architecture, mapping, plan)


@pytest.fixture
def server(tmp_path):
    """An in-process server on an ephemeral port with a job store."""
    instance = ReproServer(
        ServeConfig(
            port=0,
            workers=2,
            queue_size=16,
            state_dir=str(tmp_path / "state"),
        )
    )
    instance.start()
    yield instance
    instance.close()


@pytest.fixture
def client(server):
    """A client bound to the fixture server."""
    return ServeClient(server.url, timeout=120.0)
