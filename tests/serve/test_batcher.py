"""Micro-batching and dedup semantics (deterministic via a plugged pool)."""

import threading
import time

import pytest

from repro.obs.metrics import metrics
from repro.serve.batcher import Batcher
from repro.serve.pool import DeadlineExceeded, PoolSaturated, WorkerPool


@pytest.fixture
def pool():
    instance = WorkerPool(workers=1, queue_size=8)
    yield instance
    instance.shutdown()


@pytest.fixture
def batcher(pool):
    instance = Batcher(pool, max_batch=4, window_seconds=0.01)
    yield instance
    instance.shutdown()


def _plug(pool):
    """Block the single worker so batches cannot start resolving."""
    release = threading.Event()
    entered = threading.Event()

    def blocker():
        entered.set()
        release.wait(10.0)

    pool.submit(blocker)
    assert entered.wait(5.0)
    return release


def _counter(name):
    return metrics().counter(name).value


class TestDedup:
    def test_identical_requests_share_one_run(self, pool, batcher):
        release = _plug(pool)
        runs = []
        hits_before = _counter("serve.dedup.hits")
        entries = [
            batcher.submit("same-key", lambda: runs.append(1) or "body")
            for _ in range(6)
        ]
        release.set()
        results = [entry.result(5.0) for entry in entries]
        # One computation, one shared value, exactly N-1 dedup hits.
        assert runs == [1]
        assert results == ["body"] * 6
        assert len({id(e) for e in entries}) == 1
        assert entries[0].waiters == 6
        assert _counter("serve.dedup.hits") - hits_before == 5

    def test_distinct_keys_do_not_share(self, pool, batcher):
        release = _plug(pool)
        entries = [
            batcher.submit(f"key-{i}", lambda i=i: i) for i in range(3)
        ]
        release.set()
        assert [e.result(5.0) for e in entries] == [0, 1, 2]
        assert len({id(e) for e in entries}) == 3


class TestBatching:
    def test_burst_dispatches_as_one_batch(self, pool, batcher):
        release = _plug(pool)
        batches_before = _counter("serve.batches")
        entries = [
            batcher.submit(f"burst-{i}", lambda i=i: i) for i in range(4)
        ]
        release.set()
        assert [e.result(5.0) for e in entries] == [0, 1, 2, 3]
        # max_batch=4 and the pool was plugged while submitting: the
        # whole burst coalesced into a single dispatch.
        assert _counter("serve.batches") - batches_before == 1

    def test_error_reaches_every_waiter(self, pool, batcher):
        release = _plug(pool)

        def boom():
            raise ValueError("bad input")

        entries = [batcher.submit("err-key", boom) for _ in range(3)]
        release.set()
        for entry in entries:
            with pytest.raises(ValueError, match="bad input"):
                entry.result(5.0)


def _wait_inflight_empty(batcher, timeout=2.0):
    deadline = time.monotonic() + timeout
    while batcher._inflight and time.monotonic() < deadline:
        time.sleep(0.01)
    return not batcher._inflight


class TestDeadlines:
    def test_queued_expiry_fails_waiters_and_releases_key(
        self, pool, batcher
    ):
        release = _plug(pool)
        runs = []
        entry = batcher.submit(
            "dl-key",
            lambda: runs.append(1) or "late",
            deadline_seconds=0.01,
        )
        time.sleep(0.05)  # the deadline elapses while the batch is queued
        release.set()
        with pytest.raises(DeadlineExceeded):
            entry.result(5.0)
        assert runs == []
        # The key is not poisoned: an identical later request gets a
        # fresh entry and computes, instead of attaching to a zombie.
        again = batcher.submit("dl-key", lambda: "fresh")
        assert again is not entry
        assert again.result(5.0) == "fresh"
        assert _wait_inflight_empty(batcher)

    def test_short_deadline_does_not_expire_batchmates(self, pool, batcher):
        release = _plug(pool)
        short = batcher.submit("short", lambda: "s", deadline_seconds=0.01)
        free = batcher.submit("free", lambda: "f")
        longer = batcher.submit("long", lambda: "l", deadline_seconds=30.0)
        time.sleep(0.05)
        release.set()
        with pytest.raises(DeadlineExceeded):
            short.result(5.0)
        assert free.result(5.0) == "f"
        assert longer.result(5.0) == "l"
        assert _wait_inflight_empty(batcher)

    def test_dedup_widens_deadline(self, pool, batcher):
        release = _plug(pool)
        first = batcher.submit("widen", lambda: "v", deadline_seconds=0.01)
        second = batcher.submit("widen", lambda: "v")
        assert second is first
        assert first.deadline is None
        time.sleep(0.05)
        release.set()
        # The attached no-deadline waiter widened the entry deadline, so
        # the computation still runs for it.
        assert first.result(5.0) == "v"


class TestRejection:
    def test_pool_saturation_propagates_to_waiters(self):
        pool = WorkerPool(workers=1, queue_size=1)
        batcher = Batcher(pool, max_batch=2, window_seconds=0.0)
        release = _plug(pool)
        try:
            pool.submit(lambda: None)  # fill the queue: next dispatch rejects
            entry = batcher.submit("rejected", lambda: "never")
            with pytest.raises(PoolSaturated):
                entry.result(5.0)
        finally:
            release.set()
            batcher.shutdown()
            pool.shutdown()
