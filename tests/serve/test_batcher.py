"""Micro-batching and dedup semantics (deterministic via a plugged pool)."""

import threading

import pytest

from repro.obs.metrics import metrics
from repro.serve.batcher import Batcher
from repro.serve.pool import PoolSaturated, WorkerPool


@pytest.fixture
def pool():
    instance = WorkerPool(workers=1, queue_size=8)
    yield instance
    instance.shutdown()


@pytest.fixture
def batcher(pool):
    instance = Batcher(pool, max_batch=4, window_seconds=0.01)
    yield instance
    instance.shutdown()


def _plug(pool):
    """Block the single worker so batches cannot start resolving."""
    release = threading.Event()
    entered = threading.Event()

    def blocker():
        entered.set()
        release.wait(10.0)

    pool.submit(blocker)
    assert entered.wait(5.0)
    return release


def _counter(name):
    return metrics().counter(name).value


class TestDedup:
    def test_identical_requests_share_one_run(self, pool, batcher):
        release = _plug(pool)
        runs = []
        hits_before = _counter("serve.dedup.hits")
        entries = [
            batcher.submit("same-key", lambda: runs.append(1) or "body")
            for _ in range(6)
        ]
        release.set()
        results = [entry.result(5.0) for entry in entries]
        # One computation, one shared value, exactly N-1 dedup hits.
        assert runs == [1]
        assert results == ["body"] * 6
        assert len({id(e) for e in entries}) == 1
        assert entries[0].waiters == 6
        assert _counter("serve.dedup.hits") - hits_before == 5

    def test_distinct_keys_do_not_share(self, pool, batcher):
        release = _plug(pool)
        entries = [
            batcher.submit(f"key-{i}", lambda i=i: i) for i in range(3)
        ]
        release.set()
        assert [e.result(5.0) for e in entries] == [0, 1, 2]
        assert len({id(e) for e in entries}) == 3


class TestBatching:
    def test_burst_dispatches_as_one_batch(self, pool, batcher):
        release = _plug(pool)
        batches_before = _counter("serve.batches")
        entries = [
            batcher.submit(f"burst-{i}", lambda i=i: i) for i in range(4)
        ]
        release.set()
        assert [e.result(5.0) for e in entries] == [0, 1, 2, 3]
        # max_batch=4 and the pool was plugged while submitting: the
        # whole burst coalesced into a single dispatch.
        assert _counter("serve.batches") - batches_before == 1

    def test_error_reaches_every_waiter(self, pool, batcher):
        release = _plug(pool)

        def boom():
            raise ValueError("bad input")

        entries = [batcher.submit("err-key", boom) for _ in range(3)]
        release.set()
        for entry in entries:
            with pytest.raises(ValueError, match="bad input"):
                entry.result(5.0)


class TestRejection:
    def test_pool_saturation_propagates_to_waiters(self):
        pool = WorkerPool(workers=1, queue_size=1)
        batcher = Batcher(pool, max_batch=2, window_seconds=0.0)
        release = _plug(pool)
        try:
            pool.submit(lambda: None)  # fill the queue: next dispatch rejects
            entry = batcher.submit("rejected", lambda: "never")
            with pytest.raises(PoolSaturated):
                entry.result(5.0)
        finally:
            release.set()
            batcher.shutdown()
            pool.shutdown()
