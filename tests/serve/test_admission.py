"""Admission control: classes, quotas, priorities, brownout, deadlines."""

import http.client
import json
import threading
import time
from urllib.parse import urlsplit

import pytest

from repro.api import analyze
from repro.errors import ReproError
from repro.serve import ReproServer, ServeConfig
from repro.serve.admission import (
    BrownoutController,
    BrownoutShed,
    ClientQuotas,
    QuotaExceeded,
    TokenBucket,
    parse_class,
    parse_client_id,
    parse_deadline,
)
from repro.serve.client import (
    DeadlineExhausted,
    RetryPolicy,
    ServeClient,
    ServeError,
)
from repro.serve.encoding import (
    analysis_result_to_dict,
    bundle_to_payload,
    canonical_bytes,
)
from repro.serve.pool import (
    PoolSaturated,
    WorkItem,
    WorkerPool,
    _PriorityQueue,
)


class TestParsers:
    def test_unknown_class_lists_valid_classes(self):
        with pytest.raises(ReproError) as info:
            parse_class("urgent")
        for name in ("critical", "standard", "best-effort"):
            assert name in str(info.value)

    def test_none_class_defaults_to_standard(self):
        assert parse_class(None) == "standard"

    @pytest.mark.parametrize(
        "bad", ["", ".hidden", "a b", "x" * 129, 42, "slash/y"]
    )
    def test_bad_client_ids_rejected(self, bad):
        with pytest.raises(ReproError):
            parse_client_id(bad)

    def test_none_client_is_anonymous(self):
        assert parse_client_id(None) == "anonymous"

    @pytest.mark.parametrize("bad", ["soon", "nan", "inf", "-inf", ""])
    def test_malformed_deadlines_rejected(self, bad):
        with pytest.raises(ReproError):
            parse_deadline(bad)

    def test_spent_deadline_is_accepted_not_rejected(self):
        # A doomed request deserves a 504 answer, not a 400 scolding.
        assert parse_deadline("-1.5") == -1.5
        assert parse_deadline("0") == 0.0


class TestTokenBucket:
    def test_frozen_clock_admits_exactly_burst(self):
        """The quota contract: N racing threads, frozen clock, exactly
        ``burst`` admits — no double-spend, no lost tokens."""
        bucket = TokenBucket(rate=5.0, burst=8, clock=lambda: 0.0)
        admitted = []
        barrier = threading.Barrier(16)

        def hammer():
            barrier.wait(5.0)
            for _ in range(10):
                if bucket.acquire() is None:
                    admitted.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(admitted) == 8

    def test_refill_reports_exact_wait(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=1, clock=lambda: now[0])
        assert bucket.acquire() is None
        assert bucket.acquire() == pytest.approx(0.5)
        now[0] = 0.5  # one token refilled
        assert bucket.acquire() is None

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1, clock=lambda: 0.0)
        assert bucket.acquire() is None
        assert bucket.acquire() == float("inf")

    def test_quota_retry_after_floor_is_one_second(self):
        # rate=10 makes the true wait 0.1s; Retry-After must still be >= 1.
        quotas = ClientQuotas(rate=10.0, burst=1, clock=lambda: 0.0)
        quotas.check("alice")
        with pytest.raises(QuotaExceeded) as info:
            quotas.check("alice")
        assert info.value.retry_after >= 1

    def test_buckets_are_per_client(self):
        quotas = ClientQuotas(rate=1.0, burst=1, clock=lambda: 0.0)
        quotas.check("alice")
        quotas.check("bob")  # bob's bucket is untouched by alice
        with pytest.raises(QuotaExceeded):
            quotas.check("alice")

    def test_lru_bounds_bucket_count(self):
        quotas = ClientQuotas(rate=1.0, burst=1, max_clients=2)
        for client in ("a", "b", "c"):
            quotas.check(client)
        assert quotas.clients == 2


class TestPriorityQueue:
    @staticmethod
    def _item(priority):
        return WorkItem(lambda: None, None, priority=priority)

    def test_strict_priority_order(self):
        q = _PriorityQueue(maxsize=8, aging_seconds=60.0)
        best_effort = self._item(2)
        standard = self._item(1)
        critical = self._item(0)
        for item in (best_effort, standard, critical):
            q.put_nowait(item)
        assert q.get() is critical
        assert q.get() is standard
        assert q.get() is best_effort

    def test_aging_floor_prevents_starvation(self):
        """An old best-effort item jumps ahead of fresh critical work."""
        q = _PriorityQueue(maxsize=8, aging_seconds=0.05)
        starved = self._item(2)
        q.put_nowait(starved)
        time.sleep(0.1)  # let it age past the floor
        fresh = self._item(0)
        q.put_nowait(fresh)
        assert q.get() is starved
        assert q.get() is fresh

    def test_oldest_aged_item_wins(self):
        q = _PriorityQueue(maxsize=8, aging_seconds=0.01)
        older = self._item(2)
        q.put_nowait(older)
        time.sleep(0.03)
        newer = self._item(1)
        q.put_nowait(newer)
        time.sleep(0.03)  # both aged; the best-effort one is older
        assert q.get() is older
        assert q.get() is newer

    def test_sentinels_deliver_only_after_drain(self):
        q = _PriorityQueue(maxsize=8, aging_seconds=60.0)
        item = self._item(2)
        q.put_nowait(None)  # shutdown sentinel arrives first
        q.put_nowait(item)
        assert q.get() is item  # pending work drains before shutdown
        assert q.get() is None

    def test_pool_executes_in_priority_order(self):
        pool = WorkerPool(workers=1, queue_size=8, aging_seconds=60.0)
        try:
            release = threading.Event()
            entered = threading.Event()
            pool.submit(lambda: (entered.set(), release.wait(10.0)))
            assert entered.wait(5.0)
            order = []
            items = [
                pool.submit(lambda p=p: order.append(p), priority=p)
                for p in (2, 1, 0)
            ]
            release.set()
            for item in items:
                item.result(10.0)
            assert order == [0, 1, 2]
        finally:
            pool.shutdown()


class TestBrownoutController:
    @staticmethod
    def _controller(now):
        return BrownoutController(
            enter_seconds=1.0,
            exit_seconds=0.25,
            stage2_factor=2.0,
            dwell_seconds=2.0,
            clock=lambda: now[0],
        )

    def test_escalates_through_stages(self):
        now = [0.0]
        ctrl = self._controller(now)
        assert ctrl.update(0.5) == 0
        assert ctrl.update(1.5) == 1
        assert ctrl.update(2.5) == 2

    def test_escalates_straight_to_stage_two(self):
        now = [0.0]
        ctrl = self._controller(now)
        assert ctrl.update(5.0) == 2

    def test_recovery_needs_sustained_calm(self):
        now = [0.0]
        ctrl = self._controller(now)
        ctrl.update(1.5)
        # Below enter but above exit: hysteresis holds the stage.
        assert ctrl.update(0.5) == 1
        # Calm starts; stage holds until the dwell elapses.
        assert ctrl.update(0.1) == 1
        now[0] = 1.0
        assert ctrl.update(0.1) == 1
        now[0] = 2.5
        assert ctrl.update(0.1) == 0

    def test_flap_resets_the_dwell(self):
        now = [0.0]
        ctrl = self._controller(now)
        ctrl.update(1.5)
        ctrl.update(0.1)  # calm begins
        now[0] = 1.9
        ctrl.update(0.5)  # spike above exit: calm resets
        now[0] = 2.5
        assert ctrl.update(0.1) == 1  # old dwell no longer counts

    def test_recovery_steps_down_one_stage_at_a_time(self):
        now = [0.0]
        ctrl = self._controller(now)
        ctrl.update(9.0)  # stage 2
        ctrl.update(0.1)
        now[0] = 2.5
        assert ctrl.update(0.1) == 1
        now[0] = 5.0
        assert ctrl.update(0.1) == 0


@pytest.fixture
def brownout_server(tmp_path):
    """A server with brownout wired and a dwell too long to step down
    during a test — so a forced stage stays put."""
    instance = ReproServer(ServeConfig(
        port=0,
        workers=2,
        queue_size=16,
        state_dir=str(tmp_path / "state"),
        brownout=True,
        brownout_dwell=3600.0,
    ))
    instance.start()
    yield instance
    instance.close()


def _force_stage(server, stage):
    server.admission.brownout._stage = stage
    server.admission.brownout._calm_since = None


def _direct_bytes(bundle, **params):
    return canonical_bytes(
        analysis_result_to_dict(analyze(bundle, **params))
    )


class TestBrownoutHTTP:
    def test_stage1_sheds_best_effort_only(self, brownout_server, bundle):
        _force_stage(brownout_server, 1)
        url = brownout_server.url
        best_effort = ServeClient(url, criticality="best-effort")
        with pytest.raises(ServeError) as info:
            best_effort.analyze_raw(bundle)
        assert info.value.status == 503
        assert info.value.retry_after >= 1
        standard = ServeClient(url)
        assert standard.analyze_raw(bundle) == _direct_bytes(bundle)

    def test_stage2_degrades_standard_analyze(self, brownout_server, bundle):
        _force_stage(brownout_server, 2)
        client = ServeClient(brownout_server.url)
        body = client.analyze_raw(bundle)
        decoded = json.loads(body)
        assert decoded["degraded"] is True
        assert body != _direct_bytes(bundle)

    def test_stage2_sheds_standard_simulate(self, brownout_server, bundle):
        _force_stage(brownout_server, 2)
        client = ServeClient(brownout_server.url)
        with pytest.raises(ServeError) as info:
            client.simulate_raw(bundle, profiles=2, seed=1)
        assert info.value.status == 503
        assert info.value.retry_after >= 1

    def test_stage2_never_touches_critical(self, brownout_server, bundle):
        _force_stage(brownout_server, 2)
        client = ServeClient(brownout_server.url, criticality="critical")
        assert client.analyze_raw(bundle) == _direct_bytes(bundle)

    def test_degraded_bytes_never_poison_the_cache(
        self, brownout_server, bundle
    ):
        """A degraded response must not be replayed at full service."""
        _force_stage(brownout_server, 2)
        client = ServeClient(brownout_server.url)
        degraded = client.analyze_raw(bundle, dropped=["lo"])
        assert json.loads(degraded)["degraded"] is True
        _force_stage(brownout_server, 0)
        healthy = client.analyze_raw(bundle, dropped=["lo"])
        assert healthy == _direct_bytes(bundle, dropped=("lo",))

    def test_healthz_reports_stage(self, brownout_server):
        _force_stage(brownout_server, 1)
        client = ServeClient(brownout_server.url)
        assert client.healthz()["brownout_stage"] == 1

    def test_prometheus_exposes_admission_series(self, brownout_server):
        client = ServeClient(brownout_server.url)
        text = client._request(
            "GET", "/metrics?format=prometheus"
        ).decode("utf-8")
        assert "repro_admission_brownout_stage" in text
        assert 'repro_admission_queue_depth{class="critical"}' in text
        assert 'repro_admission_shed_total{class="best-effort"}' in text


@pytest.fixture
def quota_server(tmp_path):
    instance = ReproServer(ServeConfig(
        port=0,
        workers=2,
        queue_size=16,
        quota_rps=0.01,  # ~no refill within a test
        quota_burst=2,
    ))
    instance.start()
    yield instance
    instance.close()


class TestQuotaHTTP:
    def test_burst_then_429_with_retry_after(self, quota_server, bundle):
        client = ServeClient(quota_server.url, client_id="hammer")
        for _ in range(2):
            client.analyze_raw(bundle)
        with pytest.raises(ServeError) as info:
            client.analyze_raw(bundle)
        assert info.value.status == 429
        assert info.value.retry_after >= 1

    def test_quota_is_per_client(self, quota_server, bundle):
        first = ServeClient(quota_server.url, client_id="first")
        for _ in range(2):
            first.analyze_raw(bundle)
        with pytest.raises(ServeError):
            first.analyze_raw(bundle)
        other = ServeClient(quota_server.url, client_id="other")
        assert other.analyze_raw(bundle) == _direct_bytes(bundle)

    def test_metrics_snapshot_reports_quota(self, quota_server):
        client = ServeClient(quota_server.url)
        admission = client.metrics()["admission"]
        assert admission["quota"] == {
            "rps": 0.01, "burst": 2.0, "clients": admission["quota"]["clients"],
        }


def _raw_post(server, path, payload, headers):
    """A hand-rolled request: invalid headers a ServeClient won't send."""
    parts = urlsplit(server.url)
    conn = http.client.HTTPConnection(
        parts.hostname, parts.port, timeout=30.0
    )
    try:
        body = json.dumps(payload).encode("utf-8")
        conn.request(
            "POST", path, body=body,
            headers={"Content-Type": "application/json", **headers},
        )
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


class TestMalformedAdmissionInput:
    def test_unknown_class_header_is_400_with_class_list(self, server):
        status, body = _raw_post(
            server, "/v1/analyze", {}, {"X-Repro-Class": "urgent"}
        )
        assert status == 400
        for name in ("critical", "standard", "best-effort"):
            assert name in body["error"]["message"]

    def test_malformed_deadline_header_is_400(self, server):
        status, body = _raw_post(
            server, "/v1/analyze", {}, {"X-Repro-Deadline": "soon"}
        )
        assert status == 400
        assert "X-Repro-Deadline" in body["error"]["message"]

    def test_malformed_client_header_is_400(self, server):
        status, body = _raw_post(
            server, "/v1/analyze", {}, {"X-Repro-Client": ".hidden"}
        )
        assert status == 400
        assert "X-Repro-Client" in body["error"]["message"]

    def test_unknown_body_class_is_400_with_class_list(self, client, bundle):
        with pytest.raises(ServeError) as info:
            client.analyze_raw(bundle, criticality="urgent")
        assert info.value.status == 400
        assert "best-effort" in str(info.value)

    def test_server_survives_bad_headers(self, server, bundle):
        _raw_post(server, "/v1/analyze", {}, {"X-Repro-Class": "nope"})
        follow_up = ServeClient(server.url)
        assert follow_up.analyze_raw(bundle) == _direct_bytes(bundle)


class TestDeadlinePropagation:
    def test_spent_budget_is_504_at_admission(self, server):
        status, body = _raw_post(
            server, "/v1/analyze", {}, {"X-Repro-Deadline": "-1"}
        )
        assert status == 504
        assert body["error"]["type"] == "DeadlineExceeded"

    def test_generous_budget_served_byte_identical(self, client, bundle):
        raw = client.analyze_raw(bundle, deadline_seconds=120.0)
        assert raw == _direct_bytes(bundle)

    def test_client_fails_fast_when_backoff_overshoots_budget(
        self, quota_server, bundle
    ):
        """Satellite 1: never sleep past the caller's remaining budget.

        The quota server's Retry-After (~100s at 0.01 rps) dwarfs the
        2-second budget, so the client must raise a typed error at once
        instead of blocking on a doomed backoff."""
        client = ServeClient(
            quota_server.url,
            retry=RetryPolicy(retries=3, seed=0),
            client_id="impatient",
        )
        for _ in range(2):
            client.analyze_raw(bundle)
        started = time.monotonic()
        with pytest.raises(DeadlineExhausted) as info:
            client.analyze_raw(bundle, deadline_seconds=2.0)
        assert time.monotonic() - started < 2.0
        assert info.value.status == 429
        assert info.value.retry_after >= 1

    def test_exhausted_budget_raises_before_any_attempt(self, client, bundle):
        with pytest.raises(DeadlineExhausted):
            client.analyze_raw(bundle, deadline_seconds=0.0)


class TestRetryAfterRegression:
    """Every 429/503 rejection path must carry Retry-After >= 1."""

    def test_pool_saturation(self):
        pool = WorkerPool(workers=1, queue_size=1, aging_seconds=60.0)
        try:
            release = threading.Event()
            entered = threading.Event()
            pool.submit(lambda: (entered.set(), release.wait(10.0)))
            assert entered.wait(5.0)
            pool.submit(lambda: None)  # fills the queue
            with pytest.raises(PoolSaturated) as info:
                pool.submit(lambda: None)
            assert info.value.retry_after >= 1
            release.set()
        finally:
            pool.shutdown()

    def test_quota_exhaustion(self):
        quotas = ClientQuotas(rate=100.0, burst=1, clock=lambda: 0.0)
        quotas.check("c")
        with pytest.raises(QuotaExceeded) as info:
            quotas.check("c")
        assert info.value.retry_after >= 1

    def test_brownout_shed_floor(self):
        assert BrownoutShed("shed", retry_after=0).retry_after >= 1
        assert QuotaExceeded("over", retry_after=-3).retry_after >= 1

    def test_draining_shed_floor(self):
        from repro.serve.app import ServiceUnavailable

        assert ServiceUnavailable("draining", retry_after=0).retry_after >= 1
