"""Graceful-drain semantics: shedding, parking, and identical resume.

The contract under test (S2): a drain mid-exploration must exit
cleanly with the job parked as ``pending`` on a committed checkpoint,
and a restarted server must finish it with a Pareto front identical to
an uninterrupted run — the operator can bounce the service without
changing any answer.
"""

import json
import threading
import time

import pytest

import repro
from repro.obs.metrics import metrics
from repro.serve import ReproServer, ServeClient, ServeConfig
from repro.serve.client import RetryPolicy, ServeError


def _front(points):
    """Order-independent fingerprint of a Pareto front."""
    return sorted(
        (p["power"], p["service"], tuple(p["dropped"])) for p in points
    )


class TestShedding:
    def test_draining_sheds_compute_with_honest_retry_after(
        self, server, client, bundle
    ):
        # Flip the flag directly: this is the mid-drain window before
        # the accept loop stops, which drain() itself closes too fast
        # to probe over HTTP.
        server._draining = True
        try:
            with pytest.raises(ServeError) as excinfo:
                client.analyze(bundle)
            assert excinfo.value.status == 503
            assert (excinfo.value.retry_after or 0) >= 1
            # Health stays served so orchestrators see the state change.
            assert client.healthz()["status"] == "draining"
            assert client.metrics()["metrics"] is not None
        finally:
            server._draining = False
        assert client.analyze(bundle)["kind"] == "analysis"

    def test_retrying_client_rides_out_transient_drain(
        self, server, client, bundle
    ):
        server._draining = True
        timer = threading.Timer(
            0.4, lambda: setattr(server, "_draining", False)
        )
        timer.start()
        retrying = ServeClient(
            server.url,
            timeout=120.0,
            retry=RetryPolicy(retries=6, backoff_base=0.1, jitter=0.0),
        )
        retries_before = metrics().counter("client.retries").value
        try:
            result = retrying.analyze(bundle)
        finally:
            timer.cancel()
            server._draining = False
            retrying.close()
        assert result["kind"] == "analysis"
        assert metrics().counter("client.retries").value > retries_before


class TestParkAndResume:
    def test_drain_parks_running_job_and_restart_finishes_it(
        self, tmp_path, bundle
    ):
        state = tmp_path / "state"
        # Generations sized so the job is still running when the drain
        # reaches the job store (the HTTP/batcher/pool stages ahead of
        # it take up to ~2s; the toy system runs ~170 generations/s).
        params = dict(generations=800, population=8, seed=3,
                      checkpoint_every=1)

        def make_server():
            instance = ReproServer(
                ServeConfig(
                    port=0,
                    workers=2,
                    queue_size=16,
                    job_workers=1,
                    state_dir=str(state),
                )
            )
            instance.start()
            return instance

        server = make_server()
        client = ServeClient(server.url, timeout=120.0)
        try:
            job_id = client.explore(bundle, **params)["id"]
            # The job record only publishes checkpoint_generation once
            # the run ends; watch the checkpoint files directly.
            ckpt_dir = state / job_id / "ckpt"
            deadline = time.monotonic() + 60.0
            while not list(ckpt_dir.glob("checkpoint-*.json")):
                assert time.monotonic() < deadline, "no checkpoint committed"
                time.sleep(0.02)
            assert server.drain(timeout=60.0) is True
        finally:
            client.close()
            server.close()

        on_disk = json.loads((state / job_id / "job.json").read_text())
        assert on_disk["status"] == "pending", (
            f"drain must park the running job, got {on_disk['status']}"
        )
        assert on_disk["checkpoint_generation"] >= 1

        # Restart over the same state dir: recovery requeues the parked
        # job and checkpoint resume continues the same trajectory.
        server = make_server()
        client = ServeClient(server.url, timeout=120.0)
        try:
            final = client.wait_job(job_id, timeout=300.0)
        finally:
            client.close()
            server.close()
        assert final["status"] == "done"
        assert final["restarts"] >= 1
        assert final["result"]["generations_run"] == params["generations"]

        reference = repro.explore(
            bundle,
            generations=params["generations"],
            population=params["population"],
            seed=params["seed"],
        )
        assert _front(final["result"]["pareto"]) == _front(
            [
                {
                    "power": p.power,
                    "service": p.service,
                    "dropped": list(p.dropped),
                }
                for p in reference.pareto
            ]
        ), "resumed run must match the uninterrupted reference exactly"

    def test_idle_drain_is_clean_and_idempotent(self, tmp_path):
        server = ReproServer(
            ServeConfig(port=0, workers=1, queue_size=4,
                        state_dir=str(tmp_path / "state"))
        )
        server.start()
        drains_before = metrics().counter("serve.drains").value
        assert server.drain(timeout=10.0) is True
        # A second drain is a no-op, not a crash or a double-count.
        assert server.drain(timeout=10.0) is True
        assert metrics().counter("serve.drains").value == drains_before + 1
        server.close()
