"""End-to-end HTTP tests against an in-process server."""

import threading
import time

import pytest

from repro.api import analyze, load
from repro.model.mapping import Mapping
from repro.model.serialization import SystemBundle
from repro.obs.metrics import metrics
from repro.serve.client import ServeError
from repro.serve.encoding import analysis_result_to_dict, canonical_bytes
from repro.suites import benchmark_names


def _counter(name):
    return metrics().counter(name).value


def _plug_pool(server):
    """Occupy every pool worker until the returned event is set."""
    release = threading.Event()
    entered = []
    for _ in range(server.config.workers):
        gate = threading.Event()
        entered.append(gate)
        server.pool.submit(
            lambda gate=gate: (gate.set(), release.wait(15.0))
        )
    for gate in entered:
        assert gate.wait(5.0)
    return release


def _round_robin_bundle(name):
    """A built-in suite with a deterministic round-robin mapping."""
    bundle = load(name)
    processors = [p.name for p in bundle.architecture.processors]
    tasks = [
        task.name
        for graph in bundle.applications.graphs
        for task in graph.tasks
    ]
    mapping = Mapping(
        {task: processors[i % len(processors)] for i, task in enumerate(tasks)}
    )
    return SystemBundle(
        bundle.applications, bundle.architecture, mapping, None
    )


class TestAnalyzeEndpoint:
    def test_served_equals_facade_on_toy_system(self, client, bundle):
        raw = client.analyze_raw(bundle, dropped=["lo"])
        direct = canonical_bytes(
            analysis_result_to_dict(analyze(bundle, dropped=("lo",)))
        )
        assert raw == direct

    @pytest.mark.parametrize("suite", benchmark_names())
    def test_served_equals_facade_on_builtin_suites(self, client, suite):
        mapped = _round_robin_bundle(suite)
        raw = client.analyze_raw(mapped)
        direct = canonical_bytes(
            analysis_result_to_dict(analyze(mapped))
        )
        assert raw == direct

    def test_concurrent_identical_requests_dedup(self, server, client, bundle):
        n = 6
        hits_before = _counter("serve.dedup.hits")
        # Plug every worker so no request resolves before all attached.
        release = _plug_pool(server)
        results = [None] * n

        def call(i):
            results[i] = client.analyze_raw(bundle, dropped=["lo"])

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(n)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10.0
        while (
            _counter("serve.dedup.hits") - hits_before < n - 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        release.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert all(r is not None for r in results)
        assert all(r == results[0] for r in results)
        assert _counter("serve.dedup.hits") - hits_before >= n - 1


class TestSimulateEndpoint:
    def test_summary_fields(self, client, bundle):
        result = client.simulate(bundle, profiles=10, seed=3)
        assert result["kind"] == "simulation"
        assert result["profiles"] >= 10
        assert set(result["worst_response"]) == {"hi", "lo"}
        assert set(result["p99_response"]) == {"hi", "lo"}

    def test_unknown_dropped_rejected(self, client, bundle):
        with pytest.raises(ServeError) as info:
            client.simulate(bundle, profiles=5, dropped=["bogus"])
        assert info.value.status == 400
        assert "bogus" in str(info.value)
        assert "known applications" in str(info.value)


class TestJobsEndpoint:
    def test_explore_job_lifecycle(self, client, bundle):
        stub = client.explore(bundle, generations=2, population=4)
        # The runner may pick the job up before the 202 is rendered.
        assert stub["status"] in ("pending", "running")
        record = client.wait_job(stub["id"], timeout=120.0)
        assert record["status"] == "done"
        assert record["result"]["kind"] == "exploration"
        assert record["result"]["generations_run"] == 2

    def test_cancel_over_http(self, client, bundle):
        stub = client.explore(bundle, generations=500, population=8)
        cancelled = client.cancel(stub["id"])
        assert cancelled["cancel_requested"] is True
        record = client.wait_job(stub["id"], timeout=120.0)
        assert record["status"] == "cancelled"

    def test_unknown_job_404(self, client):
        with pytest.raises(ServeError) as info:
            client.job("job-nope")
        assert info.value.status == 404


class TestOperationalEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert "queue_depth" in health
        assert set(health["jobs"]) == {
            "pending", "running", "done", "failed", "cancelled"
        }

    def test_metrics_reports_schedule_cache(self, client, bundle):
        client.analyze(bundle)
        report = client.metrics()
        cache = report["schedule_cache"]
        assert set(cache) >= {"hits", "misses", "size", "capacity"}
        assert "metrics" in report


class TestKeepAliveHygiene:
    def test_oversized_body_rejected_and_connection_closed(self, server):
        import socket

        from repro.serve.app import MAX_BODY_BYTES

        host, port = server.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.settimeout(10.0)
            sock.sendall(
                (
                    "POST /v1/analyze HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {MAX_BODY_BYTES + 1}\r\n"
                    "\r\n"
                ).encode("ascii")
            )
            # Read everything until the server closes the socket: the
            # body was never sent, so a kept-alive connection would
            # block here waiting for a second request.
            data = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
        head = data.decode("latin-1")
        assert head.splitlines()[0].split()[1] == "400"
        assert "connection: close" in head.lower()


class TestLocalPathGate:
    def test_server_local_path_rejected_by_default(
        self, client, tmp_path, bundle
    ):
        from repro.model.serialization import save_system

        path = tmp_path / "system.json"
        save_system(
            path,
            bundle.applications,
            bundle.architecture,
            bundle.mapping,
            bundle.plan,
        )
        with pytest.raises(ServeError) as info:
            client.analyze(str(path))
        assert info.value.status == 400
        assert "allow-local-paths" in str(info.value)

    def test_suite_name_strings_still_resolve(self, client):
        # The gate blocks only filesystem paths; a built-in suite name
        # sent as a plain string resolves as before (it then fails on
        # the suite carrying no mapping — not on path resolution).
        with pytest.raises(ServeError) as info:
            client.analyze("cruise")
        assert info.value.status == 400
        assert "no mapping" in str(info.value)

    def test_explore_accepts_suite_name_strings(self, client):
        stub = client.explore("cruise", generations=1, population=4)
        record = client.wait_job(stub["id"], timeout=120.0)
        assert record["status"] == "done"


class TestErrorContract:
    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as info:
            client._request_json("GET", "/v1/bogus")
        assert info.value.status == 404

    def test_malformed_body_400(self, client):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/v1/analyze",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30.0)
        assert info.value.code == 400

    def test_unknown_field_400(self, client, bundle):
        with pytest.raises(ServeError) as info:
            client.analyze(bundle, verbosity=3)
        assert info.value.status == 400
        assert "unknown field" in str(info.value)

    def test_saturated_pool_429_with_retry_after(self, server, client, bundle):
        # Plug every worker, then fill the admission queue to the brim.
        release = _plug_pool(server)
        try:
            while True:
                server.pool.submit(lambda: None)
        except Exception:
            pass  # queue is now full
        try:
            with pytest.raises(ServeError) as info:
                client.analyze(bundle)
            assert info.value.status == 429
            assert info.value.retry_after >= 1
        finally:
            release.set()
