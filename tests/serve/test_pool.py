"""Worker pool: results, backpressure, and queue-time deadlines."""

import threading

import pytest

from repro.errors import ReproError
from repro.serve.pool import DeadlineExceeded, PoolSaturated, WorkerPool


@pytest.fixture
def pool():
    instance = WorkerPool(workers=1, queue_size=2)
    yield instance
    instance.shutdown()


def _block_worker(pool):
    """Occupy the (single) worker until the returned event is set."""
    release = threading.Event()
    entered = threading.Event()

    def blocker():
        entered.set()
        release.wait(10.0)

    pool.submit(blocker)
    assert entered.wait(5.0)
    return release


class TestResults:
    def test_value_round_trip(self, pool):
        assert pool.submit(lambda: 21 * 2).result(5.0) == 42

    def test_error_propagates(self, pool):
        item = pool.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            item.result(5.0)

    def test_shutdown_rejects_new_work(self):
        pool = WorkerPool(workers=1, queue_size=2)
        pool.shutdown()
        with pytest.raises(ReproError):
            pool.submit(lambda: None)


class TestBackpressure:
    def test_full_queue_raises_with_retry_after(self, pool):
        release = _block_worker(pool)
        try:
            for _ in range(2):  # fill the bounded queue
                pool.submit(lambda: None)
            with pytest.raises(PoolSaturated) as info:
                pool.submit(lambda: None)
            assert info.value.retry_after >= 1
        finally:
            release.set()

    def test_recovers_after_drain(self, pool):
        release = _block_worker(pool)
        pool.submit(lambda: None)
        release.set()
        assert pool.submit(lambda: "ok").result(5.0) == "ok"


class TestDeadlines:
    def test_expired_in_queue_fails_without_running(self, pool):
        release = _block_worker(pool)
        ran = threading.Event()
        item = pool.submit(ran.set, deadline_seconds=0.01)
        try:
            import time

            time.sleep(0.1)
        finally:
            release.set()
        with pytest.raises(DeadlineExceeded):
            item.result(5.0)
        assert not ran.is_set()

    def test_met_deadline_still_runs(self, pool):
        assert pool.submit(lambda: 7, deadline_seconds=30.0).result(5.0) == 7
