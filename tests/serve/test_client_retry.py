"""Client retry semantics against a scripted raw-socket server.

Covers the S1 regression: a 429 with ``Retry-After`` must be honored
as a backoff *floor* and the retry must succeed on the same keep-alive
connection (the server keeps the connection open after shedding — a
reconnect per shed would amplify overload).
"""

import socket
import threading
import time

import pytest

from repro.errors import ReproError
from repro.obs.metrics import metrics
from repro.serve.app import ServiceUnavailable
from repro.serve.client import RetryPolicy, ServeClient, ServeError
from repro.serve.pool import WorkerPool

_REASONS = {
    200: "OK",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _read_http_request(conn):
    """One request off the wire, or None when the peer closed."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(4096)
        if not chunk:
            return None
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    while len(rest) < length:
        chunk = conn.recv(4096)
        if not chunk:
            return None
        rest += chunk
    return lines[0], headers, rest[:length]


class ScriptedServer:
    """Plays a fixed per-request script of responses and faults.

    Actions, consumed one per request across all connections:

    * ``("respond", status, headers, body)`` — full keep-alive response
    * ``("respond_then_close", status, headers, body)`` — respond, then
      silently close the connection (stale keep-alive for the client)
    * ``("abort",)`` — read the request, close without responding
    """

    def __init__(self, actions):
        self._actions = list(actions)
        self._lock = threading.Lock()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self.connections = 0
        self.requests = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            self._handle(conn)

    def _handle(self, conn):
        with conn:
            while True:
                request = _read_http_request(conn)
                if request is None:
                    return
                self.requests.append(request[0])
                with self._lock:
                    action = (
                        self._actions.pop(0)
                        if self._actions
                        else ("respond", 200, {}, b"{}")
                    )
                if action[0] == "abort":
                    return
                _, status, headers, body = action
                head = [
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Scripted')}",
                    "Content-Type: application/json",
                    f"Content-Length: {len(body)}",
                ]
                head += [f"{k}: {v}" for k, v in headers.items()]
                conn.sendall(
                    ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
                )
                if action[0] == "respond_then_close":
                    return

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass


@pytest.fixture
def scripted():
    servers = []

    def factory(actions):
        server = ScriptedServer(actions)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


class TestRetryAfterFloor:
    def test_429_retries_on_same_connection_after_retry_after(
        self, scripted
    ):
        """S1 regression: shed -> honest wait -> success, one connection."""
        server = scripted(
            [
                (
                    "respond",
                    429,
                    {"Retry-After": "1"},
                    b'{"error": {"type": "PoolSaturated",'
                    b' "message": "scripted shed"}}',
                ),
                ("respond", 200, {}, b'{"status": "ok"}'),
            ]
        )
        # backoff_base=0 isolates the Retry-After floor: without the
        # floor the retry would fire immediately.
        client = ServeClient(
            server.url,
            timeout=10.0,
            retry=RetryPolicy(retries=2, backoff_base=0.0, jitter=0.0),
        )
        retries_before = metrics().counter("client.retries").value
        started = time.monotonic()
        body = client.healthz()
        elapsed = time.monotonic() - started
        assert body == {"status": "ok"}
        assert elapsed >= 0.95, "Retry-After: 1 must floor the backoff"
        assert server.connections == 1, (
            "the 429 retry must reuse the keep-alive connection"
        )
        assert metrics().counter("client.retries").value == retries_before + 1
        client.close()

    def test_server_side_retry_after_is_never_zero(self):
        # A fresh pool has no latency history and an empty queue — the
        # naive estimate is 0 seconds, which a client would interpret
        # as "hammer me again immediately".
        pool = WorkerPool(workers=2, queue_size=1)
        try:
            assert pool.retry_after() >= 1
        finally:
            pool.shutdown()
        assert ServiceUnavailable("draining", retry_after=0).retry_after >= 1
        assert ServiceUnavailable("draining", retry_after=-3).retry_after >= 1


class TestTransportRecovery:
    def test_aborted_request_is_retried_on_fresh_connection(self, scripted):
        server = scripted(
            [("abort",), ("respond", 200, {}, b'{"status": "ok"}')]
        )
        client = ServeClient(
            server.url,
            timeout=10.0,
            retry=RetryPolicy(retries=2, backoff_base=0.0, jitter=0.0),
        )
        assert client.healthz() == {"status": "ok"}
        assert server.connections == 2
        client.close()

    def test_stale_keep_alive_resend_needs_no_retry_policy(self, scripted):
        # The server closes an idle keep-alive connection between
        # requests; the client must resend transparently even with
        # retry=None (it is below-HTTP recovery, not a retry).
        server = scripted(
            [
                ("respond_then_close", 200, {}, b'{"status": "ok"}'),
                ("respond", 200, {}, b'{"status": "again"}'),
            ]
        )
        client = ServeClient(server.url, timeout=10.0, retry=None)
        reconnects_before = metrics().counter("client.reconnects").value
        assert client.healthz() == {"status": "ok"}
        assert client.healthz() == {"status": "again"}
        assert server.connections == 2
        assert (
            metrics().counter("client.reconnects").value
            == reconnects_before + 1
        )
        client.close()

    def test_fail_fast_without_retry_policy(self, scripted):
        server = scripted([("abort",)])
        client = ServeClient(server.url, timeout=10.0, retry=None)
        with pytest.raises(ServeError) as excinfo:
            client.healthz()
        assert excinfo.value.transport
        client.close()


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            retries=8, backoff_base=0.1, backoff_cap=0.8, jitter=0.0
        )
        delays = [policy.delay(attempt) for attempt in range(6)]
        assert delays[:4] == pytest.approx([0.1, 0.2, 0.4, 0.8])
        assert all(d == pytest.approx(0.8) for d in delays[3:])

    def test_retry_after_only_raises_the_delay(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=10.0, jitter=0.0)
        assert policy.delay(0, retry_after=2) == pytest.approx(2.0)
        # A Retry-After below the computed backoff must not shrink it.
        assert policy.delay(6, retry_after=1) == pytest.approx(6.4)

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=1.0, jitter=0.5,
                             seed=42)
        twin = RetryPolicy(backoff_base=1.0, backoff_cap=1.0, jitter=0.5,
                           seed=42)
        for attempt in range(20):
            delay = policy.delay(attempt)
            assert 1.0 <= delay <= 1.5
            assert delay == twin.delay(attempt)

    def test_should_retry_matrix(self):
        policy = RetryPolicy()
        assert policy.should_retry(ServeError("reset", transport=True))
        assert policy.should_retry(ServeError("shed", status=429))
        assert policy.should_retry(ServeError("draining", status=503))
        assert not policy.should_retry(ServeError("bad request", status=400))
        assert not policy.should_retry(ServeError("missing", status=404))
        assert not policy.should_retry(ServeError("boom", status=500))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(retries=-1)
        with pytest.raises(ReproError):
            RetryPolicy(backoff_base=-0.1)
