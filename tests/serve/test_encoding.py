"""Canonical encoding, request digests, and request validation."""

import json

import pytest

from repro.api import load
from repro.errors import ReproError
from repro.serve.encoding import (
    bundle_from_payload,
    bundle_to_payload,
    canonical_bytes,
    canonical_json,
    canonical_system,
    parse_analyze_request,
    parse_explore_request,
    parse_simulate_request,
    request_digest,
)


class TestCanonicalJson:
    def test_sorted_and_minimal(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_order_irrelevant(self):
        assert canonical_bytes({"x": 1, "y": 2}) == canonical_bytes(
            {"y": 2, "x": 1}
        )

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"v": float("nan")})


class TestRequestDigest:
    def test_stable_across_dict_order(self):
        a = request_digest("analyze", {"p": 1, "q": 2})
        b = request_digest("analyze", {"q": 2, "p": 1})
        assert a == b

    def test_differs_by_endpoint_and_params(self):
        params = {"p": 1}
        assert request_digest("analyze", params) != request_digest(
            "simulate", params
        )
        assert request_digest("analyze", {"p": 1}) != request_digest(
            "analyze", {"p": 2}
        )

    def test_suite_name_and_inline_payload_coalesce(self):
        inline = bundle_to_payload(load("cruise"))
        by_name = parse_analyze_request({"system": "cruise"})
        by_payload = parse_analyze_request({"system": inline})
        assert request_digest("analyze", by_name) == request_digest(
            "analyze", by_payload
        )

    def test_dropped_string_and_list_coalesce(self, bundle):
        payload = bundle_to_payload(bundle)
        a = parse_analyze_request({"system": payload, "dropped": "lo"})
        b = parse_analyze_request({"system": payload, "dropped": ["lo"]})
        assert request_digest("analyze", a) == request_digest("analyze", b)


class TestResolveSystemPaths:
    def test_paths_disabled_by_default(self, tmp_path):
        from repro.serve.encoding import resolve_system

        with pytest.raises(ReproError, match="allow-local-paths"):
            resolve_system(str(tmp_path / "system.json"))

    def test_suite_names_allowed_without_opt_in(self):
        from repro.serve.encoding import resolve_system

        bundle = resolve_system("cruise")
        assert bundle.applications.graphs

    def test_paths_resolve_when_opted_in(self, bundle, tmp_path):
        from repro.model.serialization import save_system
        from repro.serve.encoding import resolve_system

        path = tmp_path / "system.json"
        save_system(
            path,
            bundle.applications,
            bundle.architecture,
            bundle.mapping,
            bundle.plan,
        )
        loaded = resolve_system(str(path), allow_paths=True)
        assert bundle_to_payload(loaded) == bundle_to_payload(bundle)

    def test_missing_path_does_not_leak_existence_by_default(self, tmp_path):
        # Whether or not the file exists, the gated error is identical.
        from repro.serve.encoding import resolve_system

        present = tmp_path / "present.json"
        present.write_text("{}")
        for spec in (present, tmp_path / "absent.json"):
            with pytest.raises(ReproError, match="unknown suite"):
                resolve_system(str(spec))


class TestBundlePayload:
    def test_round_trip(self, bundle):
        payload = bundle_to_payload(bundle)
        again = bundle_to_payload(bundle_from_payload(payload))
        assert canonical_json(payload) == canonical_json(again)

    def test_payload_is_json_clean(self, bundle):
        json.dumps(bundle_to_payload(bundle))

    def test_missing_sections_rejected(self):
        with pytest.raises(ReproError, match="applications"):
            bundle_from_payload({"architecture": {}})

    def test_canonical_system_inlines_names(self):
        payload = canonical_system("cruise")
        assert payload["applications"] == bundle_to_payload(load("cruise"))[
            "applications"
        ]


class TestParseAnalyze:
    def test_defaults(self, bundle):
        params = parse_analyze_request({"system": bundle_to_payload(bundle)})
        assert params["method"] == "proposed"
        assert params["granularity"] == "job"
        assert params["policy"] == "fp"
        assert params["dropped"] == []
        assert params["deadline_seconds"] is None

    def test_unknown_field_rejected(self, bundle):
        with pytest.raises(ReproError, match="unknown field"):
            parse_analyze_request(
                {"system": bundle_to_payload(bundle), "verbose": True}
            )

    def test_bad_method_rejected(self, bundle):
        with pytest.raises(ReproError, match="method"):
            parse_analyze_request(
                {"system": bundle_to_payload(bundle), "method": "bogus"}
            )

    def test_system_required(self):
        with pytest.raises(ReproError, match="system"):
            parse_analyze_request({"method": "proposed"})

    def test_non_object_body_rejected(self):
        with pytest.raises(ReproError, match="JSON object"):
            parse_analyze_request([1, 2])


class TestParseSimulate:
    def test_defaults(self, bundle):
        params = parse_simulate_request({"system": bundle_to_payload(bundle)})
        assert params["profiles"] == 500
        assert params["seed"] == 0
        assert params["max_faults"] == 3
        assert params["worst_bias"] == 0.5

    def test_worst_bias_bounds(self, bundle):
        with pytest.raises(ReproError, match="worst_bias"):
            parse_simulate_request(
                {"system": bundle_to_payload(bundle), "worst_bias": 1.5}
            )

    def test_profiles_must_be_positive(self, bundle):
        with pytest.raises(ReproError, match="profiles"):
            parse_simulate_request(
                {"system": bundle_to_payload(bundle), "profiles": 0}
            )


class TestParseExplore:
    def test_defaults(self, bundle):
        params = parse_explore_request({"system": bundle_to_payload(bundle)})
        assert params["generations"] == 25
        assert params["population"] == 32
        assert params["checkpoint_every"] == 2

    def test_deadline_must_be_positive(self, bundle):
        with pytest.raises(ReproError, match="deadline_seconds"):
            parse_explore_request(
                {"system": bundle_to_payload(bundle), "deadline_seconds": 0}
            )

    def test_bool_not_an_int(self, bundle):
        with pytest.raises(ReproError, match="generations"):
            parse_explore_request(
                {"system": bundle_to_payload(bundle), "generations": True}
            )
