"""Crash-recovery races and worker-death containment (S3).

Three fault surfaces the chaos campaign exercises statistically are
pinned down deterministically here: ``recover()`` racing live traffic,
a pool worker dying on infrastructure errors, and a batch worker dying
mid-batch with waiters attached.
"""

import json
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ReproError
from repro.obs.metrics import metrics
from repro.serve.batcher import Batcher, BatchEntry
from repro.serve.encoding import bundle_to_payload, parse_explore_request
from repro.serve.jobs import Job, JobStore
from repro.serve.pool import WorkerPool


def _explore_params(bundle, **overrides):
    body = {"system": bundle_to_payload(bundle)}
    body.update(overrides)
    return parse_explore_request(body)


def _seed_record(root, job_id, params, status="pending"):
    """A job record as left behind by a process that died."""
    job = Job(id=job_id, params=params, status=status, created=time.time())
    path = root / job_id / "job.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(job.to_dict(with_result=True), sort_keys=True))
    return job_id


class TestRecoveryRaces:
    def test_recover_races_new_submissions_without_double_runs(
        self, tmp_path, bundle
    ):
        params = _explore_params(bundle, generations=2, population=4)
        seeded = [
            _seed_record(tmp_path, f"job-seed{i}", params) for i in range(3)
        ]
        store = JobStore(tmp_path, workers=2)
        try:
            barrier = threading.Barrier(3)
            requeued = [[], []]
            created = []

            def do_recover(index):
                barrier.wait(timeout=10.0)
                requeued[index].extend(store.recover())

            def do_create():
                barrier.wait(timeout=10.0)
                for _ in range(2):
                    created.append(store.create(params).id)

            threads = [
                threading.Thread(target=do_recover, args=(0,)),
                threading.Thread(target=do_recover, args=(1,)),
                threading.Thread(target=do_create),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)

            # Every seeded record requeued exactly once across both
            # concurrent recover() calls; fresh submissions untouched.
            combined = sorted(requeued[0] + requeued[1])
            assert combined == sorted(seeded)
            assert store.wait_idle(timeout=180.0)
            for job_id in seeded:
                record = store.get(job_id)
                assert record.status == "done"
                assert record.restarts == 1
            for job_id in created:
                record = store.get(job_id)
                assert record.status == "done"
                assert record.restarts == 0
        finally:
            store.shutdown()

    def test_recover_leaves_jobs_claimed_by_live_sibling(
        self, tmp_path, bundle
    ):
        params = _explore_params(bundle, generations=2, population=4)
        job_id = _seed_record(tmp_path, "job-owned", params, status="running")
        claim = tmp_path / job_id / "claim"
        claim.write_text("1")  # pid 1 is always alive and never us
        store = JobStore(tmp_path, workers=1)
        try:
            assert store.recover() == []
            record = store.get(job_id)
            assert record is not None and record.status == "running"
            assert claim.exists(), "a live sibling's claim must survive"
        finally:
            store.shutdown()

    def test_recover_breaks_stale_claim_of_dead_owner(
        self, tmp_path, bundle
    ):
        params = _explore_params(bundle, generations=2, population=4)
        job_id = _seed_record(tmp_path, "job-stale", params, status="running")
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait(timeout=30)
        (tmp_path / job_id / "claim").write_text(str(dead.pid))
        store = JobStore(tmp_path, workers=1)
        try:
            assert store.recover() == [job_id]
            assert store.wait_idle(timeout=120.0)
            record = store.get(job_id)
            assert record.status == "done"
            assert record.restarts == 1
        finally:
            store.shutdown()

    def test_idempotency_key_survives_restart(self, tmp_path, bundle):
        params = _explore_params(bundle, generations=1, population=4)
        first = JobStore(tmp_path, workers=1)
        try:
            job = first.create(params, idempotency_key="retry-me")
            assert first.wait_idle(timeout=120.0)
        finally:
            first.shutdown()
        second = JobStore(tmp_path, workers=1)
        try:
            second.recover()
            replays_before = metrics().counter(
                "serve.jobs.idempotent_replays"
            ).value
            replay = second.create(params, idempotency_key="retry-me")
            assert replay.id == job.id
            assert (
                metrics().counter("serve.jobs.idempotent_replays").value
                == replays_before + 1
            )
        finally:
            second.shutdown()


class TestPoolWorkerDeath:
    def test_worker_survives_infrastructure_error(self):
        class _Poisoned:
            # Quacks like a WorkItem up to the point where running it
            # blows up the worker thread itself.
            def __init__(self):
                self.enqueued = time.monotonic()

            def _run(self):
                raise MemoryError("injected infrastructure failure")

        pool = WorkerPool(workers=1, queue_size=8)
        try:
            respawns_before = metrics().counter(
                "serve.pool.worker_respawns"
            ).value
            pool._queue.put(_Poisoned())
            item = pool.submit(lambda: 42)
            assert item.result(timeout=30.0) == 42
            assert (
                metrics().counter("serve.pool.worker_respawns").value
                == respawns_before + 1
            )
        finally:
            pool.shutdown()


class TestBatchWorkerDeath:
    def test_dead_batch_worker_fails_waiters_without_poisoning_key(
        self, monkeypatch
    ):
        original_run = BatchEntry.run
        armed = {"doomed": True}

        def exploding_run(self):
            if self.key == "doomed" and armed["doomed"]:
                armed["doomed"] = False
                raise MemoryError("injected batch-worker death")
            return original_run(self)

        monkeypatch.setattr(BatchEntry, "run", exploding_run)
        pool = WorkerPool(workers=1, queue_size=8)
        batcher = Batcher(pool, max_batch=4, window_seconds=0.01)
        try:
            orphaned_before = metrics().counter("serve.batch.orphaned").value
            entry = batcher.submit("doomed", lambda: "never")
            with pytest.raises(ReproError, match="died mid-batch"):
                entry.result(timeout=30.0)
            assert (
                metrics().counter("serve.batch.orphaned").value
                == orphaned_before + 1
            )
            # The key must not stay registered as in-flight: the next
            # identical request gets a fresh entry and a real answer.
            retry = batcher.submit("doomed", lambda: "recovered")
            assert retry.result(timeout=30.0) == "recovered"
        finally:
            batcher.shutdown()
            pool.shutdown()
