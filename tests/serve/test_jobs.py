"""Durable exploration jobs: lifecycle, cancellation, and recovery."""

import json

import pytest

from repro.dse.checkpoint import latest_snapshot_generation
from repro.serve.encoding import bundle_to_payload, parse_explore_request
from repro.serve.jobs import Job, JobStore


def _explore_params(bundle, **overrides):
    body = {"system": bundle_to_payload(bundle)}
    body.update(overrides)
    return parse_explore_request(body)


@pytest.fixture
def store(tmp_path):
    instance = JobStore(tmp_path / "state", workers=1)
    yield instance
    instance.shutdown()


class TestLifecycle:
    def test_job_runs_to_done(self, store, bundle):
        job = store.create(
            _explore_params(bundle, generations=2, population=4)
        )
        assert store.wait_idle(timeout=120.0)
        record = store.get(job.id)
        assert record.status == "done"
        assert record.result["kind"] == "exploration"
        assert record.result["generations_run"] == 2
        # The final record write races wait_idle's in-memory view; give
        # persistence a moment.
        import time

        deadline = time.monotonic() + 5.0
        while True:
            on_disk = json.loads(
                (store.job_dir(job.id) / "job.json").read_text()
            )
            if on_disk["status"] == "done" or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        assert on_disk["status"] == "done"

    def test_unknown_job_is_none(self, store):
        assert store.get("job-missing") is None
        assert store.cancel("job-missing") is None

    def test_counts_track_states(self, store, bundle):
        store.create(_explore_params(bundle, generations=1, population=4))
        assert store.wait_idle(timeout=120.0)
        assert store.counts()["done"] == 1

    def test_checkpoints_are_written(self, store, bundle):
        job = store.create(
            _explore_params(bundle, generations=4, population=4,
                            checkpoint_every=2)
        )
        assert store.wait_idle(timeout=120.0)
        generation = latest_snapshot_generation(store.checkpoint_dir(job.id))
        assert generation is not None and generation >= 2


class TestCancellation:
    def test_pending_job_cancels_immediately(self, store, bundle):
        # Occupy the single runner, then cancel the queued job.
        busy = store.create(
            _explore_params(bundle, generations=60, population=8)
        )
        queued = store.create(
            _explore_params(bundle, generations=5, population=4)
        )
        cancelled = store.cancel(queued.id)
        assert cancelled.status in ("pending", "cancelled")
        store.cancel(busy.id)  # release the runner quickly
        assert store.wait_idle(timeout=120.0)
        assert store.get(queued.id).status == "cancelled"
        assert store.get(queued.id).result is None

    def test_running_job_cancels_cooperatively(self, store, bundle):
        job = store.create(
            _explore_params(bundle, generations=500, population=8)
        )
        import time

        deadline = time.monotonic() + 60.0
        while store.get(job.id).status == "pending":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        store.cancel(job.id)
        assert store.wait_idle(timeout=120.0)
        record = store.get(job.id)
        assert record.status == "cancelled"
        # Partial result with whatever generations completed.
        assert record.result is not None
        assert record.result["generations_run"] < 500


class TestRecovery:
    def test_unfinished_jobs_requeue_and_finish(self, tmp_path, bundle):
        state = tmp_path / "state"
        params = _explore_params(
            bundle, generations=2, population=4, checkpoint_every=1
        )
        # Forge the on-disk remains of a server killed mid-run: a job
        # record still marked running.
        job = Job(id="job-forged00001", params=params, status="running")
        job_dir = state / job.id
        job_dir.mkdir(parents=True)
        (job_dir / "job.json").write_text(json.dumps(job.to_dict()))
        store = JobStore(state, workers=1)
        try:
            requeued = store.recover()
            assert requeued == [job.id]
            record = store.get(job.id)
            assert record.restarts == 1
            assert store.wait_idle(timeout=120.0)
            assert store.get(job.id).status == "done"
        finally:
            store.shutdown()

    def test_finished_jobs_are_served_not_rerun(self, tmp_path, bundle):
        state = tmp_path / "state"
        params = _explore_params(bundle, generations=1, population=4)
        job = Job(
            id="job-forged00002",
            params=params,
            status="done",
            result={"kind": "exploration"},
        )
        job_dir = state / job.id
        job_dir.mkdir(parents=True)
        (job_dir / "job.json").write_text(json.dumps(job.to_dict()))
        store = JobStore(state, workers=1)
        try:
            assert store.recover() == []
            assert store.get(job.id).status == "done"
        finally:
            store.shutdown()

    def test_corrupt_record_is_skipped(self, tmp_path):
        state = tmp_path / "state"
        bad = state / "job-corrupt"
        bad.mkdir(parents=True)
        (bad / "job.json").write_text("{not json")
        store = JobStore(state, workers=1)
        try:
            assert store.recover() == []
            assert store.get("job-corrupt") is None
        finally:
            store.shutdown()


class TestSnapshotScan:
    def test_latest_generation(self, tmp_path):
        assert latest_snapshot_generation(tmp_path / "nope") is None
        (tmp_path / "checkpoint-00000002.json").write_text("{}")
        (tmp_path / "checkpoint-00000010.json").write_text("{}")
        (tmp_path / "checkpoint-garbage.json").write_text("{}")
        assert latest_snapshot_generation(tmp_path) == 10
