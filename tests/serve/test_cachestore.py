"""Disk-backed schedule-cache tier: persistence, tolerance, pruning.

The tier's contract: a fresh process (simulated here by fresh store and
cache instances over the same directory) serves byte-identical analysis
results straight from disk, and *any* damaged record degrades to a miss
— never to a wrong answer or a crash.
"""

import hashlib
import json

import pytest

from repro.core import FastPathConfig, MixedCriticalityAnalysis
from repro.obs.metrics import metrics
from repro.serve.cachestore import (
    SCHEMA_VERSION,
    DiskCacheStore,
    TieredScheduleCache,
    bounds_from_record,
    bounds_to_record,
)
from repro.serve.encoding import analysis_result_to_dict, canonical_bytes


@pytest.fixture
def jobset(hardened, architecture, mapping):
    return MixedCriticalityAnalysis()._base_jobset(
        hardened, architecture, mapping
    )


def _bounds(jobset):
    from repro.sched.wcrt import ScheduleBounds

    count = len(jobset.jobs)
    return ScheduleBounds(
        jobset,
        [float(i) for i in range(count)],
        [float(i) + 1.0 for i in range(count)],
        [float(i) + 2.0 for i in range(count)],
        [float(i) + 3.5 for i in range(count)],
        converged=True,
        sweeps=4,
    )


def _tiered_analysis(root, capacity=64):
    store = DiskCacheStore(root)
    cache = TieredScheduleCache(store, capacity=capacity)
    analysis = MixedCriticalityAnalysis(
        granularity="task", fast_path=FastPathConfig(cache=cache)
    )
    return store, analysis


class TestRoundTrip:
    def test_store_then_load_rebinds_exactly(self, tmp_path, jobset):
        store = DiskCacheStore(tmp_path / "cache")
        key = jobset.fingerprint()
        original = _bounds(jobset)
        store.store(key, original)
        assert store.stats()["writes"] == 1

        loaded = store.load(key, jobset)
        assert loaded is not None
        assert loaded.jobset is jobset
        assert list(loaded._min_start) == list(original._min_start)
        assert list(loaded._max_finish) == list(original._max_finish)
        assert loaded.converged is True
        assert loaded.sweeps == 4
        assert store.stats()["hits"] == 1

    def test_missing_key_is_a_plain_miss(self, tmp_path, jobset):
        store = DiskCacheStore(tmp_path / "cache")
        assert store.load("0" * 64, jobset) is None
        stats = store.stats()
        assert stats["misses"] == 1 and stats["errors"] == 0


class TestRecordValidation:
    def test_damaged_records_degrade_to_none(self, jobset):
        key = jobset.fingerprint()
        good = bounds_to_record(key, _bounds(jobset))
        assert bounds_from_record(good, key, jobset) is not None

        wrong_version = dict(good, version=SCHEMA_VERSION + 1)
        wrong_key = dict(good, key="f" * 64)
        wrong_count = dict(good, jobs=good["jobs"] + 1)
        truncated = dict(good, min_start=good["min_start"][:-1])
        poisoned = dict(good, max_finish=["NaN?"] * good["jobs"])
        for record in (
            wrong_version,
            wrong_key,
            wrong_count,
            truncated,
            poisoned,
            "not a dict",
        ):
            assert bounds_from_record(record, key, jobset) is None


class TestCrossProcessTier:
    def test_fresh_instance_serves_identical_result_from_disk(
        self, tmp_path, hardened, architecture, mapping
    ):
        root = tmp_path / "cache"
        store1, analysis1 = _tiered_analysis(root)
        cold = analysis1.analyze(hardened, architecture, mapping)
        assert store1.stats()["writes"] > 0

        # A brand-new store + L1 over the same directory stands in for
        # a restarted (or sibling) worker process.
        disk_hits_before = metrics().counter("analysis.cache.disk_hits").value
        store2, analysis2 = _tiered_analysis(root)
        warm = analysis2.analyze(hardened, architecture, mapping)
        assert store2.stats()["hits"] > 0
        assert (
            metrics().counter("analysis.cache.disk_hits").value
            > disk_hits_before
        )
        assert canonical_bytes(
            analysis_result_to_dict(warm)
        ) == canonical_bytes(analysis_result_to_dict(cold))

    def test_corrupt_entries_recompute_the_same_answer(
        self, tmp_path, hardened, architecture, mapping
    ):
        root = tmp_path / "cache"
        store1, analysis1 = _tiered_analysis(root)
        cold = analysis1.analyze(hardened, architecture, mapping)
        entry_files = list(root.rglob("*.json"))
        assert entry_files
        for path in entry_files:
            path.write_text("{ definitely not a cache record", encoding="utf-8")

        store2, analysis2 = _tiered_analysis(root)
        recomputed = analysis2.analyze(hardened, architecture, mapping)
        stats = store2.stats()
        assert stats["errors"] >= 1
        assert stats["hits"] == 0
        assert canonical_bytes(
            analysis_result_to_dict(recomputed)
        ) == canonical_bytes(analysis_result_to_dict(cold))


class TestPruning:
    def test_capacity_bounds_on_disk_entries(self, tmp_path, jobset):
        store = DiskCacheStore(tmp_path / "cache", capacity=2, prune_every=1)
        bounds = _bounds(jobset)
        keys = [
            hashlib.sha256(str(i).encode()).hexdigest() for i in range(5)
        ]
        for key in keys:
            store.store(key, bounds)
        assert store.entries() <= 2

    def test_stats_shape_for_metrics_endpoint(self, tmp_path, jobset):
        store = DiskCacheStore(tmp_path / "cache")
        tiered = TieredScheduleCache(store, capacity=8)
        key = jobset.fingerprint()
        tiered.put(key, _bounds(jobset))
        stats = tiered.stats()
        assert stats["disk"]["writes"] == 1
        assert stats["disk"]["path"] == str(tmp_path / "cache")
        # One entry file, atomically published (no temp leftovers).
        files = list((tmp_path / "cache").rglob("*"))
        names = [f.name for f in files if f.is_file()]
        assert names == [f"{key}.json"]
        assert json.loads(
            (tmp_path / "cache" / key[:2] / f"{key}.json").read_text()
        )["key"] == key
