"""End-to-end tracing and Prometheus exposition over HTTP.

Server and client live in one process here, so the process-global
tracer sees both halves of every exchange — which is exactly what lets
these tests assert that ONE trace id flows client → server → response
header.
"""

import json
import urllib.request

import pytest

from repro.obs.metrics import metrics
from repro.obs.trace import RESPONSE_TRACE_HEADER, tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    tracer().reset()
    yield
    tracer().reset()


@pytest.fixture
def sink():
    records = []
    tracer().enable(records.append)
    return records


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")


class TestTracePropagation:
    def test_round_trip_carries_one_trace_id(self, client, bundle, sink):
        client.analyze(bundle)
        assert client.last_trace_id is not None
        by_name = {}
        for record in sink:
            by_name.setdefault(record["span"], []).append(record)
        client_span = by_name["client.request"][0]
        serve_span = by_name["serve.request"][0]
        api_span = by_name["api.analyze"][0]
        # One trace id end to end, and it is the one the header reported.
        assert client_span["trace_id"] == client.last_trace_id
        assert serve_span["trace_id"] == client.last_trace_id
        assert api_span["trace_id"] == client.last_trace_id
        # The server parented its request span on the client's span.
        assert serve_span["parent_id"] == client_span["span_id"]
        assert api_span["parent_id"] == serve_span["span_id"]
        assert client_span["attrs"]["served_trace_id"] == client.last_trace_id

    def test_pool_handoff_keeps_request_trace(self, client, bundle, sink):
        client.analyze(bundle)
        analysis_spans = [r for r in sink if r["span"] == "analysis.run"]
        assert analysis_spans, "analysis should run under tracing"
        assert {r["trace_id"] for r in analysis_spans} == {
            client.last_trace_id
        }

    def test_explore_job_continues_request_trace(self, client, bundle, sink):
        stub = client.explore(bundle, generations=1, population=4, seed=5)
        submit_trace = client.last_trace_id
        record = client.wait_job(stub["id"], timeout=120.0)
        assert record["status"] == "done"
        job_spans = [r for r in sink if r["span"] == "serve.job"]
        assert {r["trace_id"] for r in job_spans} == {submit_trace}
        dse_spans = [r for r in sink if r["span"] == "dse.run"]
        assert {r["trace_id"] for r in dse_spans} == {submit_trace}

    def test_tracing_off_means_no_header(self, client, bundle):
        assert not tracer().enabled
        client.analyze(bundle)
        assert client.last_trace_id is None

    def test_error_responses_still_carry_trace_header(
        self, server, client, bundle, sink
    ):
        import urllib.error

        request = urllib.request.Request(
            server.url + "/nope", method="GET"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 404
        # 404 happens before dispatch opens a span: no stale header from
        # a previous request on the connection may leak in.
        assert excinfo.value.headers.get(RESPONSE_TRACE_HEADER) is None


class TestPrometheusEndpoint:
    def test_prometheus_format(self, server, client, bundle):
        client.analyze(bundle)
        status, headers, body = _get(server.url + "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        lines = body.splitlines()
        assert any(l.startswith("# TYPE repro_") for l in lines)
        assert any(l.startswith("repro_serve_requests_analyze_total ") for l in lines)
        assert any(l.startswith("repro_uptime_seconds ") for l in lines)
        assert any(l.startswith('repro_jobs{state="done"}') for l in lines)
        # Summary series from the request timer.
        assert any("repro_serve_latency_analyze_sum" in l for l in lines)
        assert any("repro_serve_latency_analyze_count" in l for l in lines)

    def test_histogram_quantiles_exposed(self, server):
        metrics().histogram("serve.test_lat", buckets=(1.0, 5.0)).observe(0.5)
        metrics().histogram("serve.test_lat").observe(3.0)
        _status, _headers, body = _get(
            server.url + "/metrics?format=prometheus"
        )
        assert 'repro_serve_test_lat_bucket{le="1"} 1' in body
        assert 'repro_serve_test_lat_bucket{le="+Inf"} 2' in body
        assert "repro_serve_test_lat_p50 " in body

    def test_default_metrics_stays_json(self, server, client, bundle):
        client.analyze(bundle)
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert "metrics" in payload and "schedule_cache" in payload

    def test_unknown_format_falls_back_to_json(self, server):
        status, headers, _body = _get(server.url + "/metrics?format=bogus")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
