"""Determinism and cross-component consistency checks."""

import random

import pytest

from repro.core.analysis import MixedCriticalityAnalysis
from repro.sched.fast import FastWindowAnalysisBackend
from repro.sim.engine import Simulator
from repro.sim.faults import random_profile
from repro.sim.sampler import UniformSampler


class TestSimulationDeterminism:
    def test_same_seed_same_trace(self, hardened, architecture, mapping):
        sim = Simulator(hardened, architecture, mapping, dropped=("lo",))
        profile = random_profile(hardened, random.Random(3))

        def run():
            return sim.run(
                profile=profile,
                sampler=UniformSampler(),
                rng=random.Random(42),
            )

        a, b = run(), run()
        assert a.response_times() == b.response_times()
        assert a.transitions == b.transitions
        assert a.unsafe_events == b.unsafe_events

    def test_different_seed_can_differ(self, hardened, architecture, mapping):
        sim = Simulator(hardened, architecture, mapping)
        results = {
            tuple(
                sorted(
                    (k, round(v, 6))
                    for k, v in sim.run(
                        sampler=UniformSampler(), rng=random.Random(seed)
                    )
                    .response_times()
                    .items()
                    if v is not None
                )
            )
            for seed in range(5)
        }
        assert len(results) > 1  # uniform sampling actually varies


class TestAnalysisDeterminism:
    def test_repeated_analysis_identical(self, hardened, architecture, mapping):
        analysis = MixedCriticalityAnalysis()
        a = analysis.analyze(hardened, architecture, mapping, ("lo",))
        b = analysis.analyze(hardened, architecture, mapping, ("lo",))
        assert a.task_completion == b.task_completion

    def test_backends_agree_after_many_calls(self, hardened, architecture, mapping):
        # The fast backend's structural cache must not leak across calls.
        fast = MixedCriticalityAnalysis(backend=FastWindowAnalysisBackend())
        reference = MixedCriticalityAnalysis()
        for dropped in ((), ("lo",), (), ("lo",)):
            f = fast.analyze(hardened, architecture, mapping, dropped)
            r = reference.analyze(hardened, architecture, mapping, dropped)
            for graph in hardened.applications.graph_names:
                assert f.wcrt_of(graph) == pytest.approx(
                    r.wcrt_of(graph), abs=1e-6
                )


class TestJsonRoundtripConsistency:
    def test_analysis_survives_serialization(
        self, tmp_path, apps, plan, architecture, mapping
    ):
        from repro.hardening.transform import harden
        from repro.model.serialization import load_system, save_system

        path = tmp_path / "system.json"
        save_system(path, apps, architecture, mapping=mapping, plan=plan)
        bundle = load_system(path)

        original = MixedCriticalityAnalysis().analyze(
            harden(apps, plan), architecture, mapping, ("lo",)
        )
        restored = MixedCriticalityAnalysis().analyze(
            harden(bundle.applications, bundle.plan),
            bundle.architecture,
            bundle.mapping,
            ("lo",),
        )
        for graph in apps.graph_names:
            assert restored.wcrt_of(graph) == pytest.approx(
                original.wcrt_of(graph)
            )
