"""Safety cross-validation on the built-in suites (heterogeneous speeds).

The DT platforms mix node speeds — the scaling path through unrolling,
analysis and the simulator must stay consistent, and the analysis bound
must still dominate every simulated response.
"""

import random

import pytest

from repro.core.analysis import MixedCriticalityAnalysis
from repro.dse.chromosome import heuristic_chromosome, partition_chromosome
from repro.hardening.transform import harden
from repro.sim.engine import Simulator
from repro.sim.montecarlo import MonteCarloEstimator
from repro.suites import get_benchmark


@pytest.mark.parametrize("benchmark_name", ["dt-med", "dt-large", "synth-2"])
@pytest.mark.parametrize("seed_style", ["partition", "roundrobin"])
def test_analysis_bounds_simulation_on_suites(benchmark_name, seed_style):
    problem = get_benchmark(benchmark_name).problem
    rng = random.Random(7)
    droppable = tuple(g.name for g in problem.applications.droppable_graphs)
    if seed_style == "partition":
        chromosome = partition_chromosome(problem, rng, dropped=droppable)
    else:
        chromosome = heuristic_chromosome(problem, rng, dropped=droppable)
    design = chromosome.decode(problem)
    hardened = harden(problem.applications, design.plan)

    analysis = MixedCriticalityAnalysis(granularity="task").analyze(
        hardened, problem.architecture, design.mapping, design.dropped
    )
    simulator = Simulator(
        hardened,
        problem.architecture,
        design.mapping,
        dropped=tuple(design.dropped),
    )
    estimate = MonteCarloEstimator(simulator).estimate(profiles=25, seed=3)
    for graph, observed in estimate.worst_response.items():
        if graph in design.dropped:
            continue
        assert analysis.wcrt_of(graph) >= observed - 1e-6, (
            benchmark_name,
            seed_style,
            graph,
        )


def test_speed_scaling_consistency_dt():
    """A task on a 1.5x node runs 1.5x faster in both analysis and sim."""
    problem = get_benchmark("dt-med").problem
    speeds = {p.name: p.speed for p in problem.architecture.processors}
    assert len(set(speeds.values())) > 1, "dt-med must be speed-heterogeneous"

    from repro.model.mapping import Mapping
    from repro.sched.jobs import unroll
    from repro.hardening.spec import HardeningPlan

    hardened = harden(problem.applications, HardeningPlan())
    slow_node = min(speeds, key=speeds.get)
    fast_node = max(speeds, key=speeds.get)
    slow_map = Mapping({t: slow_node for t in problem.applications.all_task_names})
    fast_map = Mapping({t: fast_node for t in problem.applications.all_task_names})
    slow_jobs = unroll(hardened.applications, slow_map, problem.architecture)
    fast_jobs = unroll(hardened.applications, fast_map, problem.architecture)
    ratio = speeds[fast_node] / speeds[slow_node]
    for slow_job, fast_job in zip(slow_jobs.jobs, fast_jobs.jobs):
        assert slow_job.wcet == pytest.approx(fast_job.wcet * ratio)
