"""Cross-validation: the analyses must upper-bound every simulation.

This is the load-bearing claim of the paper ("the proposed analysis
always upper-bounds the simulation and ad-hoc worst-case results", §5.1).
Random systems are generated, hardened and mapped; the Monte-Carlo
simulator then tries to break the bounds with random failure profiles
and worst-case-biased execution times.
"""

import random

import pytest

from repro.benchgen.tgff import GraphShape, TgffConfig, generate_problem
from repro.core.adhoc import AdhocAnalysis
from repro.core.analysis import MixedCriticalityAnalysis
from repro.core.naive import NaiveAnalysis
from repro.dse.chromosome import random_chromosome
from repro.dse.repair import repair
from repro.hardening.transform import harden
from repro.sim.engine import Simulator
from repro.sim.montecarlo import MonteCarloEstimator


def build_system(seed):
    """A random problem + repaired random design point."""
    problem = generate_problem(
        seed=seed,
        critical_graphs=1,
        droppable_graphs=2,
        processors=3,
        config=TgffConfig(
            shape=GraphShape(min_tasks=2, max_tasks=4, min_layers=1, max_layers=3),
            period_slack_range=(2.5, 4.0),
        ),
        name_prefix=f"sys{seed}",
    )
    rng = random.Random(seed)
    chromosome = repair(random_chromosome(problem, rng), problem, rng)
    design = chromosome.decode(problem)
    hardened = harden(problem.applications, design.plan)
    return problem, design, hardened


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
@pytest.mark.parametrize("policy", ["fp", "edf"])
def test_proposed_upper_bounds_simulation(seed, policy):
    problem, design, hardened = build_system(seed)
    analysis = MixedCriticalityAnalysis(policy=policy).analyze(
        hardened, problem.architecture, design.mapping, dropped=design.dropped
    )
    simulator = Simulator(
        hardened,
        problem.architecture,
        design.mapping,
        dropped=tuple(design.dropped),
        policy=policy,
    )
    estimate = MonteCarloEstimator(simulator, max_faults=4).estimate(
        profiles=60, seed=seed
    )
    for graph in hardened.applications.graphs:
        observed = estimate.worst_response.get(graph.name)
        if observed is None:
            continue
        if graph.name in design.dropped:
            continue  # dropped graphs are only bounded in the normal state
        assert analysis.wcrt_of(graph.name) >= observed - 1e-6, (
            f"seed {seed}: analysis {analysis.wcrt_of(graph.name):.3f} < "
            f"simulated {observed:.3f} for graph {graph.name}"
        )


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_naive_upper_bounds_proposed(seed):
    problem, design, hardened = build_system(seed)
    proposed = MixedCriticalityAnalysis().analyze(
        hardened, problem.architecture, design.mapping, dropped=design.dropped
    )
    naive = NaiveAnalysis().analyze(
        hardened, problem.architecture, design.mapping, dropped=design.dropped
    )
    for graph in hardened.applications.graphs:
        if graph.name in design.dropped:
            continue
        assert naive.wcrt_of(graph.name) >= proposed.wcrt_of(graph.name) - 1e-6


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_proposed_upper_bounds_adhoc_trace(seed):
    problem, design, hardened = build_system(seed)
    proposed = MixedCriticalityAnalysis().analyze(
        hardened, problem.architecture, design.mapping, dropped=design.dropped
    )
    adhoc = AdhocAnalysis().analyze(
        hardened, problem.architecture, design.mapping, dropped=design.dropped
    )
    for graph in hardened.applications.graphs:
        if graph.name in design.dropped:
            continue
        assert proposed.wcrt_of(graph.name) >= adhoc.wcrt_of(graph.name) - 1e-6


@pytest.mark.parametrize("seed", [11, 12])
def test_normal_state_bounds_fault_free_simulation(seed):
    problem, design, hardened = build_system(seed)
    analysis = MixedCriticalityAnalysis().analyze(
        hardened, problem.architecture, design.mapping, dropped=design.dropped
    )
    simulator = Simulator(
        hardened, problem.architecture, design.mapping, dropped=tuple(design.dropped)
    )
    from repro.sim.sampler import WorstCaseSampler

    trace = simulator.run(sampler=WorstCaseSampler())
    for graph in hardened.applications.graphs:
        observed = trace.graph_response_time(graph.name)
        if observed is None:
            continue
        assert analysis.verdicts[graph.name].normal_wcrt >= observed - 1e-6
