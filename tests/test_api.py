"""The repro.api facade round-trips the CLI flows."""

import pytest

import repro
from repro.api import analyze, explore, load, simulate, validate_dropped
from repro.errors import ReproError
from repro.model.serialization import SystemBundle, save_system


@pytest.fixture
def system_file(tmp_path, apps, plan, architecture, mapping):
    path = tmp_path / "system.json"
    save_system(path, apps, architecture, mapping=mapping, plan=plan)
    return str(path)


class TestLoad:
    def test_path(self, system_file):
        bundle = load(system_file)
        assert bundle.mapping is not None
        assert bundle.plan is not None

    def test_suite_name(self):
        bundle = load("cruise")
        assert {g.name for g in bundle.applications.graphs} >= {"cc", "info"}
        assert bundle.mapping is None

    def test_bundle_passthrough(self, system_file):
        bundle = load(system_file)
        assert load(bundle) is bundle


class TestValidateDropped:
    def test_accepts_known_names(self, apps):
        assert validate_dropped(apps, ("lo",)) == ("lo",)

    def test_comma_string_with_whitespace(self, apps):
        assert validate_dropped(apps, " lo , ") == ("lo",)

    def test_lists_all_unknown_names(self, apps):
        with pytest.raises(ReproError) as excinfo:
            validate_dropped(apps, ("lo", "ghost", "phantom"))
        message = str(excinfo.value)
        assert "ghost" in message and "phantom" in message
        assert "lo" in message  # known names are listed for discovery

    def test_cli_dropped_validation(self, system_file):
        """The analyze CLI rejects unknown --dropped names (the old code
        silently ignored them)."""
        from repro.cli import main

        assert main(["analyze", system_file, "--dropped", "lo,ghost"]) == 2


class TestAnalyze:
    def test_matches_cli_analyze_flow(self, system_file):
        """api.analyze == the deep-module composition the CLI performs."""
        from repro.core import make_analysis
        from repro.hardening.transform import harden

        bundle = load(system_file)
        hardened = harden(bundle.applications, bundle.plan)
        expected = make_analysis().analyze(
            hardened, bundle.architecture, bundle.mapping, ("lo",)
        )
        got = analyze(system_file, dropped="lo")
        assert got == expected

    def test_methods_and_backends(self, system_file):
        for method in ("proposed", "naive", "adhoc"):
            result = analyze(system_file, method=method)
            assert set(result.verdicts) == {"hi", "lo"}
        fast = analyze(system_file, backend="fast", fast_path=True)
        assert fast == analyze(system_file)

    def test_requires_mapping(self, tmp_path, apps, architecture):
        path = tmp_path / "plain.json"
        save_system(path, apps, architecture)
        with pytest.raises(ReproError, match="no mapping"):
            analyze(str(path))

    def test_unknown_dropped_rejected(self, system_file):
        with pytest.raises(ReproError, match="ghost"):
            analyze(system_file, dropped=("ghost",))

    def test_top_level_reexports(self):
        assert repro.analyze is analyze
        assert repro.load is load
        assert repro.simulate is simulate
        assert repro.explore is explore
        assert repro.api.analyze is analyze


class TestSimulate:
    def test_matches_cli_simulate_flow(self, system_file):
        result = simulate(system_file, profiles=10, dropped="lo", seed=4)
        assert result.profiles == 11  # 10 random + fault-free baseline
        assert "hi" in result.worst_response

    def test_accepts_bundle(self, apps, plan, architecture, mapping):
        bundle = SystemBundle(apps, architecture, mapping, plan)
        result = simulate(bundle, profiles=5)
        assert result.profiles == 6

    def test_unknown_dropped_rejected(self, system_file):
        with pytest.raises(ReproError, match="ghost"):
            simulate(system_file, profiles=5, dropped=("ghost",))


class TestExplore:
    def test_matches_cli_explore_flow(self, tmp_path, apps, architecture):
        path = tmp_path / "plain.json"
        save_system(path, apps, architecture)
        result = explore(str(path), generations=3, population=10, seed=5)
        assert result.statistics.evaluations > 0
        # Same knobs through the CLI produce the same front.
        from repro.cli import main

        out = tmp_path / "pareto.json"
        main(
            [
                "explore", str(path), "--generations", "3", "--population",
                "10", "--seed", "5", "--out", str(out),
            ]
        )
        import json

        if result.pareto:
            payload = json.loads(out.read_text())
            api_rows = sorted(
                (round(p.power, 9), round(p.service, 9)) for p in result.pareto
            )
            cli_rows = sorted(
                (round(p["power"], 9), round(p["service"], 9))
                for p in payload["pareto"]
            )
            assert api_rows == cli_rows

    def test_suite_name_end_to_end(self):
        result = explore("cruise", generations=2, population=8, seed=1)
        assert result.statistics.evaluations > 0


class TestCacheIntrospection:
    def test_stats_shape(self):
        stats = repro.cache_stats()
        assert set(stats) >= {"hits", "misses", "size", "capacity", "hit_rate"}
        assert stats["size"] <= stats["capacity"]

    def test_shared_analyses_populate_the_cache(
        self, apps, plan, architecture, mapping
    ):
        from repro.core.fastpath import FastPathConfig

        repro.cache_clear()
        before = repro.cache_stats()
        bundle = SystemBundle(apps, architecture, mapping, plan)
        analyze(bundle, fast_path=FastPathConfig.shared())
        analyze(bundle, fast_path=FastPathConfig.shared())
        after = repro.cache_stats()
        assert after["size"] > 0
        assert after["hits"] > before["hits"]

    def test_clear_empties_the_cache(self):
        repro.cache_clear()
        assert repro.cache_stats()["size"] == 0
