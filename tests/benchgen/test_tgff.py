"""Unit tests for the TGFF-style benchmark generator."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.tgff import (
    GraphShape,
    TgffConfig,
    generate_application_set,
    generate_architecture,
    generate_problem,
    generate_task_graph,
)
from repro.errors import ModelError


class TestConfigValidation:
    def test_bad_task_range(self):
        with pytest.raises(ModelError):
            GraphShape(min_tasks=5, max_tasks=2)

    def test_bad_edge_probability(self):
        with pytest.raises(ModelError):
            GraphShape(extra_edge_probability=1.5)

    def test_bad_wcet_range(self):
        with pytest.raises(ModelError):
            TgffConfig(wcet_range=(10.0, 5.0))

    def test_bad_bcet_factors(self):
        with pytest.raises(ModelError):
            TgffConfig(bcet_factor_range=(0.9, 0.4))

    def test_bad_quantum(self):
        with pytest.raises(ModelError):
            TgffConfig(period_quantum=0.0)


class TestGraphGeneration:
    def test_deterministic_per_seed(self):
        a = generate_task_graph("g", random.Random(42))
        b = generate_task_graph("g", random.Random(42))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_task_graph("g", random.Random(1))
        b = generate_task_graph("g", random.Random(2))
        assert a != b

    def test_connectivity(self):
        for seed in range(10):
            graph = generate_task_graph("g", random.Random(seed))
            if len(graph) == 1:
                continue
            undirected = graph.to_networkx().to_undirected()
            assert nx.is_connected(undirected)

    def test_every_nonsource_has_predecessor(self):
        for seed in range(10):
            graph = generate_task_graph("g", random.Random(seed))
            sources = set(graph.sources)
            for name in graph.task_names:
                if name not in sources:
                    assert graph.predecessors(name)

    def test_period_is_power_of_two_quantum(self):
        config = TgffConfig(period_quantum=50.0)
        for seed in range(10):
            graph = generate_task_graph("g", random.Random(seed), config)
            ratio = graph.period / 50.0
            assert ratio == 2 ** round(__import__("math").log2(ratio))

    def test_period_has_slack(self):
        config = TgffConfig(period_slack_range=(2.0, 4.0))
        for seed in range(10):
            graph = generate_task_graph("g", random.Random(seed), config)
            assert graph.period >= graph.critical_path_wcet() * 2.0

    def test_droppable_flag(self):
        droppable = generate_task_graph("g", random.Random(0), droppable=True)
        critical = generate_task_graph("g", random.Random(0), droppable=False)
        assert droppable.droppable
        assert not critical.droppable
        assert critical.reliability_target == TgffConfig().reliability_target

    def test_task_prefix(self):
        graph = generate_task_graph("g", random.Random(0), task_prefix="pfx")
        assert all(t.name.startswith("pfx_") for t in graph.tasks)


class TestSetGeneration:
    def test_application_set_mix(self):
        apps = generate_application_set(
            random.Random(5), critical_graphs=2, droppable_graphs=3
        )
        assert len(apps.critical_graphs) == 2
        assert len(apps.droppable_graphs) == 3

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            generate_application_set(random.Random(0), 0, 0)

    def test_architecture_generation(self):
        arch = generate_architecture(random.Random(0), processors=5, types=2)
        assert len(arch) == 5
        assert {p.ptype for p in arch} == {"type0", "type1"}
        for p in arch:
            assert p.fault_rate > 0

    def test_architecture_rejects_bad_counts(self):
        with pytest.raises(ModelError):
            generate_architecture(random.Random(0), processors=0)
        with pytest.raises(ModelError):
            generate_architecture(random.Random(0), processors=2, types=0)

    def test_problem_generation(self):
        problem = generate_problem(seed=9, critical_graphs=1, droppable_graphs=1)
        assert len(problem.applications) == 2
        assert len(problem.architecture) == 4
        # hyperperiod stays bounded thanks to power-of-two periods
        periods = [g.period for g in problem.applications.graphs]
        assert problem.applications.hyperperiod == max(periods)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_generated_problems_are_always_valid(seed):
    problem = generate_problem(
        seed=seed, critical_graphs=1, droppable_graphs=1, processors=3
    )
    apps = problem.applications
    assert apps.hyperperiod == max(g.period for g in apps.graphs)
    for graph in apps.graphs:
        assert graph.critical_path_wcet() <= graph.period
