"""Channel-payload distributions and the comm-dominated family."""

import json
import random

import pytest

from repro.benchgen.tgff import (
    TgffConfig,
    comm_dominated_problem,
    generate_problem,
)
from repro.errors import ModelError
from repro.model.serialization import (
    application_set_to_dict,
    architecture_to_dict,
)


def _channel_sizes(problem):
    return [
        channel.size
        for graph in problem.applications.graphs
        for channel in graph.channels
    ]


def _system_json(problem):
    return json.dumps(
        {
            "applications": application_set_to_dict(problem.applications),
            "architecture": architecture_to_dict(problem.architecture),
        },
        sort_keys=True,
    )


class TestDistributions:
    def test_uniform_sizes_stay_in_range(self):
        config = TgffConfig()
        problem = generate_problem(3, config=config)
        low, high = config.comm_size_range
        for size in _channel_sizes(problem):
            assert low <= size <= high

    def test_bimodal_draws_both_modes(self):
        config = TgffConfig(
            comm_size_distribution="bimodal", comm_bulk_probability=0.5
        )
        sizes = []
        for seed in range(6):
            sizes.extend(_channel_sizes(generate_problem(seed, config=config)))
        control_low, control_high = config.comm_size_range
        bulk_low, bulk_high = config.comm_bulk_range
        control = [s for s in sizes if control_low <= s <= control_high]
        bulk = [s for s in sizes if bulk_low <= s <= bulk_high]
        assert control and bulk
        assert len(control) + len(bulk) == len(sizes)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ModelError):
            TgffConfig(comm_size_distribution="gaussian")

    def test_invalid_bulk_probability_rejected(self):
        with pytest.raises(ModelError):
            TgffConfig(comm_bulk_probability=1.5)


class TestDeterminism:
    @pytest.mark.parametrize(
        "config",
        (
            TgffConfig(),
            TgffConfig(
                comm_size_distribution="bimodal", comm_bulk_probability=0.4
            ),
        ),
        ids=("uniform", "bimodal"),
    )
    def test_same_seed_byte_identical_json(self, config):
        first = _system_json(generate_problem(11, config=config))
        second = _system_json(generate_problem(11, config=config))
        assert first == second

    def test_distributions_change_the_output(self):
        uniform = _system_json(generate_problem(11, config=TgffConfig()))
        bimodal = _system_json(
            generate_problem(
                11, config=TgffConfig(comm_size_distribution="bimodal")
            )
        )
        assert uniform != bimodal

    def test_uniform_default_preserves_legacy_draw_sequence(self):
        # The distribution knob must not perturb the rng stream: an
        # explicit uniform config and the pre-knob default path (None)
        # generate byte-identical systems for the same seed.
        explicit = _system_json(generate_problem(7, config=TgffConfig()))
        default = _system_json(generate_problem(7))
        assert explicit == default


class TestCommDominatedFamily:
    def test_deterministic(self):
        assert _system_json(comm_dominated_problem()) == _system_json(
            comm_dominated_problem()
        )

    def test_carries_the_comm_configuration(self):
        problem = comm_dominated_problem(
            comm_backend="noc-xy", arq_retries=3, arq_timeout=0.25
        )
        fabric = problem.architecture.interconnect
        assert fabric.comm_backend == "noc-xy"
        assert fabric.arq_retries == 3
        assert fabric.arq_timeout == 0.25

    def test_is_actually_comm_heavy(self):
        problem = comm_dominated_problem()
        sizes = _channel_sizes(problem)
        bandwidth = problem.architecture.interconnect.bandwidth
        transfer = sum(size / bandwidth for size in sizes) / len(sizes)
        wcets = [
            task.wcet
            for graph in problem.applications.graphs
            for task in graph.tasks
        ]
        # Mean transfer time rivals mean execution time.
        assert transfer >= 0.5 * (sum(wcets) / len(wcets))
