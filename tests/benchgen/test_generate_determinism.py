"""``repro generate`` determinism: same seed, byte-identical artifacts."""

import json

import pytest

from repro.cli import main
from repro.model.serialization import load_system, save_system


def _generate(tmp_path, name, seed):
    out = tmp_path / name
    code = main(
        ["generate", str(out), "--seed", str(seed),
         "--critical", "2", "--droppable", "2", "--processors", "4"]
    )
    assert code == 0
    return out.read_bytes()


class TestGenerateDeterminism:
    def test_same_seed_byte_identical(self, tmp_path):
        first = _generate(tmp_path, "a.json", 11)
        second = _generate(tmp_path, "b.json", 11)
        assert first == second

    def test_different_seeds_differ(self, tmp_path):
        assert _generate(tmp_path, "a.json", 1) != _generate(
            tmp_path, "b.json", 2
        )

    @pytest.mark.parametrize("seed", (0, 7))
    def test_serialization_round_trip_is_stable(self, tmp_path, seed):
        raw = _generate(tmp_path, "gen.json", seed)
        bundle = load_system(tmp_path / "gen.json")
        again = tmp_path / "again.json"
        save_system(again, bundle.applications, bundle.architecture)
        assert again.read_bytes() == raw
        # And the round trip itself is a fixed point.
        bundle2 = load_system(again)
        final = tmp_path / "final.json"
        save_system(final, bundle2.applications, bundle2.architecture)
        assert final.read_bytes() == raw

    def test_payload_is_canonicalizable(self, tmp_path):
        _generate(tmp_path, "gen.json", 3)
        payload = json.loads((tmp_path / "gen.json").read_text())
        assert payload["format_version"] == 1
        assert set(payload) >= {"applications", "architecture"}
