"""Smoke/shape tests for the experiment harnesses (tiny budgets)."""

import pytest

from repro.experiments.dropping import (
    DroppingPowerRow,
    format_power_rows,
    format_ratio_rows,
    run_dropping_ratios,
    run_power_comparison,
)
from repro.experiments.pareto import format_front, run_fig5
from repro.experiments.scaling import run_scaling
from repro.experiments.table2 import format_table2, run_table2


class TestTable2:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_table2(profiles=40, seed=1)

    def test_complete_grid(self, cells):
        keys = {(c.method, c.mapping, c.app) for c in cells}
        assert len(keys) == 4 * 3 * 2

    def test_orderings(self, cells):
        by_key = {(c.method, c.mapping, c.app): c.wcrt for c in cells}
        for mapping in (1, 2, 3):
            for app in ("cc", "mon"):
                assert by_key[("Proposed", mapping, app)] >= by_key[
                    ("WC-Sim", mapping, app)
                ] - 1e-6
                assert by_key[("Proposed", mapping, app)] >= by_key[
                    ("Adhoc", mapping, app)
                ] - 1e-6
                assert by_key[("Naive", mapping, app)] >= by_key[
                    ("Proposed", mapping, app)
                ] - 1e-6

    def test_formatting(self, cells):
        text = format_table2(cells)
        assert "Proposed" in text and "Mapping 3" in text


class TestDroppingHarnesses:
    def test_power_comparison_shape(self):
        rows = run_power_comparison(
            benchmarks=("dt-med",), generations=4, population=12, seed=1
        )
        (row,) = rows
        assert row.benchmark == "dt-med"
        if row.power_with_dropping and row.power_without_dropping:
            assert row.power_without_dropping >= row.power_with_dropping - 1e-9
            assert row.extra_power_percent >= -1e-9
        assert "dt-med" in format_power_rows(rows)

    def test_extra_power_handles_missing(self):
        row = DroppingPowerRow("x", None, 5.0)
        assert row.extra_power_percent is None
        assert "x" in format_power_rows([row])

    def test_ratio_harness_shape(self):
        rows = run_dropping_ratios(
            benchmarks=("synth-1",), generations=3, population=10, seed=1
        )
        (row,) = rows
        assert row.evaluations > 0
        assert 0.0 <= row.ratio_over_all <= 1.0
        assert 0.0 <= row.ratio_over_feasible <= 1.0
        assert 0.0 <= row.reexecution_share <= 1.0
        assert "synth-1" in format_ratio_rows(rows)


class TestFig5:
    def test_harness_runs(self):
        result = run_fig5(generations=3, population=10, seed=1)
        text = format_front(result)
        assert "Pareto front" in text
        front = result.drop_set_front()
        for point in front:
            assert point.power > 0

    def test_other_benchmark_supported(self):
        result = run_fig5(generations=2, population=8, seed=1, benchmark="synth-1")
        assert result.statistics.evaluations > 0


class TestScaling:
    def test_rows_shape(self):
        rows = run_scaling(sizes=(1, 2), granularity="task")
        assert len(rows) == 2
        assert rows[0].tasks < rows[1].tasks
        assert all(row.seconds >= 0 for row in rows)


class TestValidation:
    def test_rows_and_formatting(self):
        from repro.experiments.validation import format_validation, run_validation

        rows = run_validation(seeds=(1,), profiles=15)
        assert len(rows) == 3
        assert all(row.safe for row in rows)
        text = format_validation(rows)
        assert "safety violation" in text

    def test_cli_dispatch(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["validate", "--quick"]) == 0
        assert "Safety validation" in capsys.readouterr().out


class TestTradeoff:
    def test_shape(self):
        from repro.experiments.tradeoff import format_tradeoff, run_tradeoff
        from repro.hardening.spec import HardeningKind

        rows = run_tradeoff()
        by_label = {row.label: row for row in rows}
        none = by_label["none"]
        reexec = by_label["re-exec k=1"]
        checkpoint = by_label["checkpoint 4seg k=2"]
        active3 = by_label["active x3"]
        passive = by_label["passive 2+1"]
        # time redundancy: space-free, critical-time expensive
        assert reexec.processors_used == 1
        assert reexec.critical_wcet > none.critical_wcet
        assert checkpoint.critical_wcet < by_label["re-exec k=2"].critical_wcet
        # space redundancy: critical-time free, average-power expensive
        assert active3.critical_wcet == none.critical_wcet
        assert active3.expected_time > 2 * none.expected_time
        assert passive.expected_time < active3.expected_time
        # everything hardened is safer than nothing
        for row in rows:
            if row.label != "none":
                assert row.unsafe_probability < none.unsafe_probability
        assert "technique" in format_tradeoff(rows)

    def test_cli_dispatch(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["tradeoff", "--quick"]) == 0
        assert "Hardening trade-offs" in capsys.readouterr().out


class TestCli:
    def test_main_quick_scaling(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["scaling", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Algorithm 1 scaling" in output

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["bogus"])
