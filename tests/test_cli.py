"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.problem import DesignPoint
from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.model.serialization import save_system


@pytest.fixture
def system_file(tmp_path, apps, plan, architecture, mapping):
    path = tmp_path / "system.json"
    save_system(path, apps, architecture, mapping=mapping, plan=plan)
    return str(path)


@pytest.fixture
def unmapped_system_file(tmp_path, apps, architecture):
    path = tmp_path / "plain.json"
    save_system(path, apps, architecture)
    return str(path)


class TestAnalyze:
    def test_proposed(self, system_file, capsys):
        code = main(["analyze", system_file, "--dropped", "lo"])
        output = capsys.readouterr().out
        assert "hi" in output and "transitions analyzed" in output
        assert code in (0, 1)

    def test_naive_and_adhoc(self, system_file, capsys):
        for method in ("naive", "adhoc"):
            main(["analyze", system_file, "--method", method])
            assert "hi" in capsys.readouterr().out

    def test_policy_and_bus_flags(self, system_file, capsys):
        code = main(
            ["analyze", system_file, "--policy", "edf", "--bus-contention",
             "--dropped", "lo"]
        )
        assert code in (0, 1)
        assert "hi" in capsys.readouterr().out

    def test_backend_selection(self, system_file, capsys):
        for backend in ("window", "fast", "holistic"):
            code = main(
                ["analyze", system_file, "--backend", backend, "--dropped", "lo"]
            )
            assert code in (0, 1)
            assert "hi" in capsys.readouterr().out

    def test_comm_backend_selection(self, system_file, capsys):
        for backend in ("flat", "shared-bus", "tdma", "noc-xy"):
            code = main(
                ["analyze", system_file, "--comm-backend", backend,
                 "--dropped", "lo"]
            )
            assert code in (0, 1)
            assert "hi" in capsys.readouterr().out

    def test_comm_arq_flags(self, system_file, capsys):
        code = main(
            ["analyze", system_file, "--comm-backend", "shared-bus",
             "--comm-arq", "2", "--comm-arq-timeout", "0.5",
             "--dropped", "lo"]
        )
        assert code in (0, 1)
        assert "hi" in capsys.readouterr().out

    def test_unknown_comm_backend_lists_choices(self, system_file, capsys):
        # Same UX as --method: argparse rejects the name and prints the
        # full registry in the error message.
        with pytest.raises(SystemExit):
            main(["analyze", system_file, "--comm-backend", "token-ring"])
        error = capsys.readouterr().err
        for name in ("flat", "shared-bus", "tdma", "noc-xy"):
            assert name in error

    def test_simulate_edf(self, system_file, capsys):
        assert main(
            ["simulate", system_file, "--profiles", "5", "--policy", "edf"]
        ) == 0

    def test_plan_file(self, tmp_path, unmapped_system_file, apps, architecture, capsys):
        # Plan application changes the task set -> mapping must cover T',
        # so build a system with a mapping over the plain tasks and a
        # re-execution-only plan (topology unchanged).
        from repro.model.mapping import Mapping

        path = tmp_path / "sys2.json"
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        save_system(path, apps, architecture, flat)
        plan_path = tmp_path / "plan.json"
        plan = HardeningPlan({"a": HardeningSpec.reexecution(1)})
        plan_path.write_text(json.dumps(plan.to_dict()))
        main(["analyze", str(path), "--plan", str(plan_path)])
        assert "transitions analyzed: 1" in capsys.readouterr().out

    def test_missing_mapping_is_error(self, unmapped_system_file, capsys):
        code = main(["analyze", unmapped_system_file])
        assert code == 2
        assert "no mapping" in capsys.readouterr().err


class TestSimulate:
    def test_campaign(self, system_file, capsys):
        code = main(
            ["simulate", system_file, "--profiles", "10", "--dropped", "lo"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "profiles: 11" in output
        assert "hi" in output

    def test_unknown_dropped_rejected(self, system_file, capsys):
        """`simulate --dropped` validates names like `analyze --dropped`:
        unknown applications fail fast with the full list, instead of
        silently simulating with nothing dropped."""
        code = main(
            ["simulate", system_file, "--profiles", "5",
             "--dropped", "ghost,phantom"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "ghost" in err and "phantom" in err
        assert "known applications" in err
        assert "hi" in err and "lo" in err


class TestExplore:
    def test_explore_writes_pareto(self, tmp_path, unmapped_system_file, capsys):
        out = tmp_path / "pareto.json"
        code = main(
            [
                "explore",
                unmapped_system_file,
                "--generations",
                "3",
                "--population",
                "10",
                "--out",
                str(out),
            ]
        )
        output = capsys.readouterr().out
        assert "Pareto front" in output
        if code == 0:
            payload = json.loads(out.read_text())
            assert payload["pareto"]
            # Design points round-trip.
            design = DesignPoint.from_dict(payload["pareto"][0]["design"])
            assert design.allocation

    def test_resume_requires_checkpoint_dir(self, unmapped_system_file):
        assert main(["explore", unmapped_system_file, "--resume"]) == 2

    def test_checkpoint_and_resume_matches_reference(
        self, tmp_path, unmapped_system_file
    ):
        common = [
            "explore",
            unmapped_system_file,
            "--population",
            "10",
            "--seed",
            "5",
        ]
        reference = tmp_path / "reference.json"
        main(common + ["--generations", "6", "--out", str(reference)])

        ckpt = tmp_path / "ckpt"
        checkpointed = common + [
            "--checkpoint-dir",
            str(ckpt),
            "--checkpoint-every",
            "1",
        ]
        main(checkpointed + ["--generations", "3"])
        assert list(ckpt.glob("checkpoint-*.json"))
        # The quarantine path defaults under the checkpoint directory and
        # stays absent for a healthy run (lazily created).
        assert not (ckpt / "quarantine.jsonl").exists()

        resumed = tmp_path / "resumed.json"
        main(
            checkpointed
            + ["--generations", "6", "--resume", "--out", str(resumed)]
        )
        assert json.loads(resumed.read_text()) == json.loads(
            reference.read_text()
        )


class TestVerify:
    def test_clean_system_exits_zero(self, system_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["verify", system_file, "--budget", "15", "--seed", "2",
             "--out", str(out)]
        )
        assert code == 0
        assert "violations: 0" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert len(payload["scenarios"]) == 15

    def test_replay_without_system(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        code = main(["verify", "--replay", str(corpus)])
        assert code == 0
        assert "still reproducing: 0" in capsys.readouterr().out

    def test_no_system_no_replay_is_error(self, capsys):
        assert main(["verify"]) == 2
        assert "required" in capsys.readouterr().err


class TestMargins:
    def test_margins_command(self, system_file, capsys):
        code = main(["margins", system_file, "--dropped", "lo"])
        output = capsys.readouterr().out
        assert "deadline margin" in output
        assert "scaling margin" in output
        assert code in (0, 1)

    def test_margins_requires_mapping(self, unmapped_system_file, capsys):
        assert main(["margins", unmapped_system_file]) == 2


class TestExportAndGenerate:
    def test_export_benchmark(self, tmp_path, capsys):
        out = tmp_path / "dtmed.json"
        assert main(["export", "dt-med", str(out)]) == 0
        from repro.model.serialization import load_system

        bundle = load_system(out)
        assert "t1" in bundle.applications
        assert bundle.mapping is None
        assert bundle.plan is None

    def test_export_cruise_with_mapping(self, tmp_path, capsys):
        out = tmp_path / "cruise.json"
        assert main(["export", "cruise", str(out), "--with-reference-mapping"]) == 0
        from repro.model.serialization import load_system

        bundle = load_system(out)
        assert bundle.mapping is not None
        assert bundle.plan is not None
        assert "cc_ctl#vote" in bundle.mapping  # mapping covers T'
        # The exported system is immediately analyzable.
        assert main(["analyze", str(out), "--dropped", "info"]) in (0, 1)

    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "random.json"
        assert main(["generate", str(out), "--seed", "5"]) == 0
        from repro.model.serialization import load_system

        bundle = load_system(out)
        assert len(bundle.architecture) == 4
        assert len(bundle.applications) == 4
