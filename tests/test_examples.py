"""Smoke tests: every shipped example must run to completion.

The examples are part of the public API surface; running them end-to-end
(as subprocesses, like a user would) catches interface drift.  The DSE
and sensitivity examples accept no CLI budget flags, so the two heaviest
ones run with tight wall-clock limits.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize(
    "name, timeout, marker",
    [
        ("quickstart.py", 120, "proposed"),
        ("motivational_example.py", 120, "MISSES"),
        ("custom_backend.py", 120, "serialized backend"),
        ("passive_replication_demo.py", 120, "work#p0"),
    ],
)
def test_example_runs(name, timeout, marker):
    result = run_example(name, timeout)
    assert result.returncode == 0, result.stderr
    assert marker in result.stdout


def test_cruise_dse_with_tiny_budget():
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "cruise_dse.py"),
            "--generations", "2",
            "--population", "10",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "Pareto front" in result.stdout


def test_gantt_rendered_by_motivational_example():
    result = run_example("motivational_example.py", 120)
    assert result.returncode == 0, result.stderr
    assert "gantt" in result.stdout
    assert "pe0 |" in result.stdout
