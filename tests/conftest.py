"""Shared fixtures: a small two-application system used across the suite."""

import pytest

from repro.core.problem import Problem
from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import (
    Architecture,
    Interconnect,
    InterconnectKind,
    Processor,
)
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph


@pytest.fixture
def critical_graph():
    """A non-droppable three-task pipeline a -> b -> c."""
    return TaskGraph(
        "hi",
        tasks=[
            Task("a", 1.0, 2.0, voting_overhead=0.5, detection_overhead=0.2),
            Task("b", 2.0, 4.0, voting_overhead=0.5, detection_overhead=0.4),
            Task("c", 1.0, 1.5, voting_overhead=0.5, detection_overhead=0.1),
        ],
        channels=[Channel("a", "b", 10.0), Channel("b", "c", 5.0)],
        period=20.0,
        reliability_target=1e-6,
    )


@pytest.fixture
def droppable_graph():
    """A droppable two-task pipeline x -> y."""
    return TaskGraph(
        "lo",
        tasks=[Task("x", 1.0, 3.0), Task("y", 1.0, 2.0)],
        channels=[Channel("x", "y", 8.0)],
        period=10.0,
        service_value=5.0,
    )


@pytest.fixture
def apps(critical_graph, droppable_graph):
    """The two applications combined."""
    return ApplicationSet([critical_graph, droppable_graph])


@pytest.fixture
def architecture():
    """Three identical processors on a fast bus."""
    processors = [
        Processor(
            name=f"pe{i}",
            ptype="generic",
            static_power=1.0,
            dynamic_power=2.0,
            fault_rate=1e-5,
        )
        for i in range(3)
    ]
    return Architecture(
        processors,
        Interconnect(bandwidth=1000.0, base_latency=0.0, kind=InterconnectKind.SHARED_BUS),
    )


@pytest.fixture
def plan():
    """Re-execute a, passively replicate b."""
    return HardeningPlan(
        {
            "a": HardeningSpec.reexecution(2),
            "b": HardeningSpec.passive(3, active=2),
        }
    )


@pytest.fixture
def hardened(apps, plan):
    """The hardened system T'."""
    return harden(apps, plan)


@pytest.fixture
def mapping(hardened):
    """A fixed valid mapping of T' onto the three processors."""
    return Mapping(
        {
            "a": "pe0",
            "b": "pe0",
            "b#r1": "pe1",
            "b#p0": "pe2",
            "b#vote": "pe0",
            "c": "pe1",
            "x": "pe2",
            "y": "pe2",
        }
    )


@pytest.fixture
def problem(apps, architecture):
    """The toy optimization problem."""
    return Problem(applications=apps, architecture=architecture)
