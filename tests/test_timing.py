"""Unit tests for the internal time arithmetic helpers."""

import pytest

from repro._timing import as_rational, hyperperiod, lcm_rational
from repro.errors import ModelError
from fractions import Fraction


class TestAsRational:
    def test_integers(self):
        assert as_rational(10.0) == Fraction(10)

    def test_fractions(self):
        assert as_rational(2.5) == Fraction(5, 2)

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            as_rational(-1.0)


class TestLcm:
    def test_integers(self):
        assert lcm_rational(Fraction(4), Fraction(6)) == Fraction(12)

    def test_rationals(self):
        # lcm(3/2, 5/4) = 15/2
        assert lcm_rational(Fraction(3, 2), Fraction(5, 4)) == Fraction(15, 2)


class TestHyperperiod:
    def test_basic(self):
        assert hyperperiod([10, 15]) == 30.0

    def test_fractional(self):
        assert hyperperiod([2.5, 10]) == 10.0

    def test_single(self):
        assert hyperperiod([7.0]) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            hyperperiod([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ModelError):
            hyperperiod([10, 0])


class TestErrors:
    def test_hierarchy(self):
        from repro.errors import (
            AnalysisError,
            ExplorationError,
            HardeningError,
            InfeasibleError,
            MappingError,
            ModelError,
            ReproError,
            SimulationError,
        )

        for exc in (
            ModelError,
            MappingError,
            HardeningError,
            AnalysisError,
            InfeasibleError,
            SimulationError,
            ExplorationError,
        ):
            assert issubclass(exc, ReproError)

    def test_infeasible_carries_violations(self):
        from repro.errors import InfeasibleError

        error = InfeasibleError("nope", violations=["a", "b"])
        assert error.violations == ["a", "b"]
