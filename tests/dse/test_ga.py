"""Unit tests for the exploration loop."""

import pytest

from repro.dse.ga import Explorer, ExplorerConfig
from repro.errors import ExplorationError


def small_config(**overrides):
    defaults = dict(
        population_size=12,
        offspring_size=12,
        archive_size=12,
        generations=4,
        seed=7,
    )
    defaults.update(overrides)
    return ExplorerConfig(**defaults)


class TestConfigValidation:
    def test_population_too_small(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(population_size=1)

    def test_bad_crossover_probability(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(crossover_probability=1.5)

    def test_bad_workers(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(workers=0)

    def test_paper_defaults(self):
        config = ExplorerConfig()
        assert config.population_size == 100
        assert config.offspring_size == 100
        assert config.generations == 5000


class TestExploration:
    def test_finds_feasible_solutions(self, problem):
        result = Explorer(problem, small_config()).run()
        assert result.statistics.feasible > 0
        assert result.pareto, "expected at least one Pareto point"

    def test_front_is_mutually_nondominated(self, problem):
        result = Explorer(problem, small_config()).run()
        rows = result.front_as_rows()
        for i, (power_i, service_i, _d) in enumerate(rows):
            for j, (power_j, service_j, _d2) in enumerate(rows):
                if i == j:
                    continue
                assert not (
                    power_j <= power_i
                    and service_j >= service_i
                    and (power_j < power_i or service_j > service_i)
                )

    def test_deterministic_per_seed(self, problem):
        a = Explorer(problem, small_config()).run()
        b = Explorer(problem, small_config()).run()
        assert a.front_as_rows() == b.front_as_rows()
        assert a.statistics.evaluations == b.statistics.evaluations

    def test_history_shape(self, problem):
        result = Explorer(problem, small_config(generations=3)).run()
        assert len(result.history) == 4  # generations 0..3
        generations = [g for g, _power, _count in result.history]
        assert generations == [0, 1, 2, 3]

    def test_caching_avoids_reevaluation(self, problem):
        explorer = Explorer(problem, small_config())
        result = explorer.run()
        stats = result.statistics
        # Heuristic seeds + offspring overlap across generations.
        assert stats.cache_hits > 0

    def test_stagnation_stops_early(self, problem):
        config = small_config(generations=50, stagnation_limit=2)
        result = Explorer(problem, config).run()
        assert result.generations_run < 50

    def test_disable_dropping(self, problem):
        config = small_config(disable_dropping=True)
        result = Explorer(problem, config).run()
        for point in result.pareto:
            assert point.design.dropped == frozenset()

    def test_track_dropping_gain(self, problem):
        config = small_config(track_dropping_gain=True)
        result = Explorer(problem, config).run()
        stats = result.statistics
        assert stats.dropping_gain <= stats.dropping_checked <= stats.feasible

    def test_worker_pool_matches_serial(self, problem):
        serial = Explorer(problem, small_config(workers=1)).run()
        threaded = Explorer(problem, small_config(workers=4)).run()
        assert serial.front_as_rows() == threaded.front_as_rows()

    def test_hardening_histogram_collected(self, problem):
        result = Explorer(problem, small_config()).run()
        assert sum(result.statistics.hardening_histogram.values()) > 0

    def test_best_power_and_service_accessors(self, problem):
        result = Explorer(problem, small_config()).run()
        best_power = result.best_power
        best_service = result.best_service
        assert best_power is not None and best_service is not None
        assert best_power.power <= best_service.power + 1e-9
        assert best_service.service >= best_power.service - 1e-9
