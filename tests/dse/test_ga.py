"""Unit tests for the exploration loop."""

import json
import zlib

import pytest

from repro.core.evaluator import Evaluator
from repro.dse.ga import Explorer, ExplorerConfig
from repro.errors import ExplorationError


def small_config(**overrides):
    defaults = dict(
        population_size=12,
        offspring_size=12,
        archive_size=12,
        generations=4,
        seed=7,
    )
    defaults.update(overrides)
    return ExplorerConfig(**defaults)


class TestConfigValidation:
    def test_population_too_small(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(population_size=1)

    def test_bad_crossover_probability(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(crossover_probability=1.5)

    def test_bad_workers(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(workers=0)

    def test_bad_archive_size(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(archive_size=0)

    @pytest.mark.parametrize(
        "knob",
        [
            "mutation_allocation_rate",
            "mutation_keep_alive_rate",
            "mutation_gene_rate",
        ],
    )
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_bad_mutation_rate(self, knob, rate):
        with pytest.raises(ExplorationError):
            ExplorerConfig(**{knob: rate})

    def test_bad_stagnation_limit(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(stagnation_limit=0)

    def test_bad_eval_retries(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(eval_retries=-1)

    def test_bad_eval_budget(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(eval_soft_budget_seconds=0.0)

    def test_bad_checkpoint_interval(self):
        with pytest.raises(ExplorationError):
            ExplorerConfig(checkpoint_every=0)

    def test_paper_defaults(self):
        config = ExplorerConfig()
        assert config.population_size == 100
        assert config.offspring_size == 100
        assert config.generations == 5000


class TestExploration:
    def test_finds_feasible_solutions(self, problem):
        result = Explorer(problem, small_config()).run()
        assert result.statistics.feasible > 0
        assert result.pareto, "expected at least one Pareto point"

    def test_front_is_mutually_nondominated(self, problem):
        result = Explorer(problem, small_config()).run()
        rows = result.front_as_rows()
        for i, (power_i, service_i, _d) in enumerate(rows):
            for j, (power_j, service_j, _d2) in enumerate(rows):
                if i == j:
                    continue
                assert not (
                    power_j <= power_i
                    and service_j >= service_i
                    and (power_j < power_i or service_j > service_i)
                )

    def test_deterministic_per_seed(self, problem):
        a = Explorer(problem, small_config()).run()
        b = Explorer(problem, small_config()).run()
        assert a.front_as_rows() == b.front_as_rows()
        assert a.statistics.evaluations == b.statistics.evaluations

    def test_history_shape(self, problem):
        result = Explorer(problem, small_config(generations=3)).run()
        assert len(result.history) == 4  # generations 0..3
        generations = [g for g, _power, _count in result.history]
        assert generations == [0, 1, 2, 3]

    def test_caching_avoids_reevaluation(self, problem):
        explorer = Explorer(problem, small_config())
        result = explorer.run()
        stats = result.statistics
        # Heuristic seeds + offspring overlap across generations.
        assert stats.cache_hits > 0

    def test_stagnation_stops_early(self, problem):
        config = small_config(generations=50, stagnation_limit=2)
        result = Explorer(problem, config).run()
        assert result.generations_run < 50

    def test_disable_dropping(self, problem):
        config = small_config(disable_dropping=True)
        result = Explorer(problem, config).run()
        for point in result.pareto:
            assert point.design.dropped == frozenset()

    def test_track_dropping_gain(self, problem):
        config = small_config(track_dropping_gain=True)
        result = Explorer(problem, config).run()
        stats = result.statistics
        assert stats.dropping_gain <= stats.dropping_checked <= stats.feasible

    def test_worker_pool_matches_serial(self, problem):
        serial = Explorer(problem, small_config(workers=1)).run()
        threaded = Explorer(problem, small_config(workers=4)).run()
        assert serial.front_as_rows() == threaded.front_as_rows()

    def test_hardening_histogram_collected(self, problem):
        result = Explorer(problem, small_config()).run()
        assert sum(result.statistics.hardening_histogram.values()) > 0

    def test_best_power_and_service_accessors(self, problem):
        result = Explorer(problem, small_config()).run()
        best_power = result.best_power
        best_service = result.best_service
        assert best_power is not None and best_service is not None
        assert best_power.power <= best_service.power + 1e-9
        assert best_service.service >= best_power.service - 1e-9

    def test_counterfactual_results_are_cached(self, problem):
        calls = []

        class CountingEvaluator(Evaluator):
            def evaluate(self, design):
                calls.append(tuple(sorted(design.dropped)))
                return super().evaluate(design)

        baseline = Explorer(
            problem, small_config(), evaluator=CountingEvaluator(problem)
        ).run()
        baseline_calls = len(calls)
        calls.clear()
        tracked = Explorer(
            problem,
            small_config(track_dropping_gain=True),
            evaluator=CountingEvaluator(problem),
        ).run()
        stats = tracked.statistics
        assert stats.dropping_checked > 1
        # stats.evaluations counts exactly the backend invocations.
        assert stats.evaluations == len(calls)
        # Tracking must not perturb the search itself.
        assert tracked.front_as_rows() == baseline.front_as_rows()
        # Repeated drop-set counterfactuals are served from the caches:
        # the extra backend calls stay below one per counterfactual check.
        counterfactual_calls = len(calls) - baseline_calls
        assert counterfactual_calls < stats.dropping_checked


class CrashingEvaluator(Evaluator):
    """Deterministically raises on ~10% of designs (stable fingerprint)."""

    def evaluate(self, design):
        fingerprint = zlib.crc32(
            json.dumps(sorted(design.mapping.as_dict().items())).encode()
        )
        if fingerprint % 10 == 0:
            raise RuntimeError(f"poisoned design {fingerprint}")
        return super().evaluate(design)


class TestGuardedExploration:
    def guarded_config(self, tmp_path, name, **overrides):
        return small_config(
            generations=5,
            eval_fallback=False,
            eval_retries=0,
            quarantine_path=str(tmp_path / f"{name}.jsonl"),
            **overrides,
        )

    def test_crashing_backend_does_not_abort(self, problem, tmp_path):
        config = self.guarded_config(tmp_path, "serial")
        explorer = Explorer(
            problem, config, evaluator=CrashingEvaluator(problem)
        )
        result = explorer.run()
        stats = result.statistics
        assert stats.guard_failures > 0, "crash rate never triggered"
        assert stats.evaluations == stats.feasible + stats.infeasible
        assert result.pareto, "the run should still find feasible points"

    def test_poison_points_quarantined(self, problem, tmp_path):
        config = self.guarded_config(tmp_path, "quarantine")
        explorer = Explorer(
            problem, config, evaluator=CrashingEvaluator(problem)
        )
        result = explorer.run()
        explorer.quarantine.close()
        lines = (tmp_path / "quarantine.jsonl").read_text().splitlines()
        # line 0 is the self-describing header; records follow
        header = json.loads(lines[0])
        assert header["schema"] == "repro.verify.quarantine-header/1"
        records = [json.loads(line) for line in lines[1:]]
        assert len(records) == result.statistics.guard_failures
        assert all(r["error_type"] == "RuntimeError" for r in records)
        assert all(r["design"] is not None for r in records)

    def test_parallel_guarded_run_matches_serial(self, problem, tmp_path):
        serial = Explorer(
            problem,
            self.guarded_config(tmp_path, "serial", workers=1),
            evaluator=CrashingEvaluator(problem),
        ).run()
        threaded = Explorer(
            problem,
            self.guarded_config(tmp_path, "threaded", workers=4),
            evaluator=CrashingEvaluator(problem),
        ).run()
        assert serial.front_as_rows() == threaded.front_as_rows()
        assert serial.history == threaded.history
        assert serial.statistics.to_dict() == threaded.statistics.to_dict()

    def test_fallback_rescues_poison_points(self, problem, tmp_path):
        config = small_config(
            generations=5,
            eval_fallback=True,
            eval_retries=0,
            quarantine_path=str(tmp_path / "rescued.jsonl"),
        )
        explorer = Explorer(
            problem, config, evaluator=CrashingEvaluator(problem)
        )
        result = explorer.run()
        stats = result.statistics
        assert stats.fallback_evaluations > 0
        # Every poison point was rescued by the fast-window fallback, so
        # none ended as an absorbed (infeasible) guard failure.
        assert stats.guard_failures == 0
        explorer.quarantine.close()
        lines = (tmp_path / "rescued.jsonl").read_text().splitlines()
        # one header line plus one record per rescued evaluation
        assert len(lines) == 1 + stats.fallback_evaluations
