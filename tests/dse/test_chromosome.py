"""Unit tests for the Figure-4 chromosome."""

import random

import pytest

from repro.dse.chromosome import (
    Chromosome,
    TaskGene,
    heuristic_chromosome,
    partition_chromosome,
    random_chromosome,
)
from repro.errors import ExplorationError
from repro.hardening.spec import HardeningKind


class TestTaskGene:
    def test_plain_gene(self):
        gene = TaskGene(processor="pe0")
        assert gene.spec().kind is HardeningKind.NONE
        assert not gene.is_replicated

    def test_reexecution_gene(self):
        gene = TaskGene(processor="pe0", reexecutions=2)
        assert gene.spec().reexecutions == 2

    def test_active_gene(self):
        gene = TaskGene(
            processor="pe0", active_replicas=("pe1", "pe2"), voter_processor="pe0"
        )
        spec = gene.spec()
        assert spec.kind is HardeningKind.ACTIVE
        assert spec.replicas == 3

    def test_passive_gene(self):
        gene = TaskGene(
            processor="pe0",
            active_replicas=("pe1",),
            passive_replicas=("pe2",),
            voter_processor="pe0",
        )
        spec = gene.spec()
        assert spec.kind is HardeningKind.PASSIVE
        assert spec.effective_active_replicas == 2
        assert spec.passive_replicas == 1

    def test_replication_overrides_reexecution(self):
        gene = TaskGene(processor="pe0", reexecutions=3, active_replicas=("pe1",))
        assert gene.spec().kind is HardeningKind.ACTIVE

    def test_passive_without_active_partner_rejected(self):
        gene = TaskGene(processor="pe0", passive_replicas=("pe2",))
        with pytest.raises(ExplorationError):
            gene.spec()

    def test_checkpoint_gene(self):
        gene = TaskGene(processor="pe0", reexecutions=2, checkpoints=3)
        spec = gene.spec()
        assert spec.kind is HardeningKind.CHECKPOINT
        assert spec.checkpoints == 3
        assert spec.reexecutions == 2

    def test_checkpoint_needs_recoveries(self):
        gene = TaskGene(processor="pe0", reexecutions=0, checkpoints=3)
        assert gene.spec().kind is HardeningKind.NONE

    def test_replication_overrides_checkpoints(self):
        gene = TaskGene(
            processor="pe0", reexecutions=1, checkpoints=2,
            active_replicas=("pe1",),
        )
        assert gene.spec().kind is HardeningKind.ACTIVE


class TestDecode:
    def make_chromosome(self, problem):
        return heuristic_chromosome(problem, random.Random(0), dropped=("lo",))

    def test_decode_produces_valid_design(self, problem):
        design = self.make_chromosome(problem).decode(problem)
        assert design.dropped == frozenset({"lo"})
        design.mapping.validate(
            # hardened T' has only primaries here (re-exec hardening)
            problem.applications,
            problem.architecture,
            allocated=design.allocation,
        )

    def test_decode_maps_replicas_and_voter(self, problem):
        chromosome = self.make_chromosome(problem)
        gene = TaskGene(
            processor="pe0",
            active_replicas=("pe1",),
            passive_replicas=("pe2",),
            voter_processor="pe1",
        )
        chromosome = chromosome.with_gene("b", gene)
        design = chromosome.decode(problem)
        assert design.mapping["b#r1"] == "pe1"
        assert design.mapping["b#p0"] == "pe2"
        assert design.mapping["b#vote"] == "pe1"

    def test_decode_requires_gene_per_task(self, problem):
        chromosome = self.make_chromosome(problem)
        genes = dict(chromosome.genes)
        del genes["a"]
        broken = Chromosome(
            allocation=chromosome.allocation,
            keep_alive=chromosome.keep_alive,
            genes=genes,
        )
        with pytest.raises(ExplorationError, match="no gene"):
            broken.decode(problem)

    def test_decode_rejects_wrong_section_sizes(self, problem):
        chromosome = self.make_chromosome(problem)
        with pytest.raises(ExplorationError):
            chromosome.with_allocation((True,)).decode(problem)
        with pytest.raises(ExplorationError):
            chromosome.with_keep_alive(()).decode(problem)

    def test_decode_rejects_empty_allocation(self, problem):
        chromosome = self.make_chromosome(problem)
        empty = chromosome.with_allocation((False, False, False))
        with pytest.raises(ExplorationError):
            empty.decode(problem)

    def test_key_is_stable_identity(self, problem):
        a = self.make_chromosome(problem)
        b = heuristic_chromosome(problem, random.Random(99), dropped=("lo",))
        # heuristic layout differs only in rotation offset; keys compare
        # structure, so identical layouts share a key.
        assert a.key() == Chromosome(
            allocation=a.allocation, keep_alive=a.keep_alive, genes=dict(a.genes)
        ).key()
        assert isinstance(hash(a.key()), int)


class TestGenerators:
    def test_random_chromosome_shape(self, problem):
        rng = random.Random(1)
        chromosome = random_chromosome(problem, rng)
        assert len(chromosome.allocation) == 3
        assert len(chromosome.keep_alive) == 1
        assert set(chromosome.genes) == set(problem.applications.all_task_names)
        assert any(chromosome.allocation)

    def test_random_respects_allocation(self, problem):
        rng = random.Random(2)
        for _ in range(10):
            chromosome = random_chromosome(problem, rng)
            allocated = set(chromosome.allocated_processors(problem))
            for gene in chromosome.genes.values():
                assert gene.processor in allocated

    def test_partition_chromosome_colocates_graphs(self, problem):
        chromosome = partition_chromosome(problem, random.Random(0))
        for graph in problem.applications.graphs:
            processors = {
                chromosome.genes[t.name].processor for t in graph.tasks
            }
            assert len(processors) == 1

    def test_heuristic_chromosome_drop_set(self, problem):
        chromosome = heuristic_chromosome(problem, random.Random(0), dropped=("lo",))
        assert chromosome.dropped_graphs(problem) == ("lo",)
        alive = heuristic_chromosome(problem, random.Random(0), dropped=())
        assert alive.dropped_graphs(problem) == ()

    def test_heuristic_hardens_critical_only(self, problem):
        chromosome = heuristic_chromosome(problem, random.Random(0))
        for graph in problem.applications.graphs:
            for task in graph.tasks:
                gene = chromosome.genes[task.name]
                if graph.droppable:
                    assert gene.reexecutions == 0
                else:
                    assert gene.reexecutions == 1
