"""Unit tests for crash-safe checkpoint/resume."""

import json
import random

import pytest

from repro.dse.checkpoint import (
    CheckpointManager,
    RunSnapshot,
    SNAPSHOT_VERSION,
    problem_digest,
    snapshot_from_dict,
    snapshot_to_dict,
)
from repro.dse.chromosome import random_chromosome
from repro.dse.ga import Explorer, ExplorerConfig
from repro.dse.repair import repair
from repro.dse.results import ExplorationStatistics
from repro.errors import CheckpointError


def make_snapshot(problem, generation=4, seed=0):
    rng = random.Random(seed)
    population = [
        repair(random_chromosome(problem, rng), problem, rng)
        for _ in range(3)
    ]
    rng.random()  # advance past a round number
    return RunSnapshot(
        generation=generation,
        rng_state=rng.getstate(),
        population=population,
        archive=population[:2],
        best_power=12.25,
        stagnation=1,
        statistics=ExplorationStatistics(evaluations=7, feasible=3),
        history=[(0, None, 0), (1, 12.5, 2)],
    )


def small_config(**overrides):
    defaults = dict(
        population_size=12,
        offspring_size=12,
        archive_size=12,
        generations=4,
        seed=7,
    )
    defaults.update(overrides)
    return ExplorerConfig(**defaults)


def front(result):
    return result.front_as_rows()


class TestSnapshotSerialization:
    def test_roundtrip(self, problem):
        snapshot = make_snapshot(problem)
        digest = problem_digest(problem)
        payload = snapshot_to_dict(snapshot, digest)
        # Through actual JSON, with the same key sorting the manager uses.
        payload = json.loads(json.dumps(payload, sort_keys=True))
        restored = snapshot_from_dict(payload)
        assert restored.generation == snapshot.generation
        assert restored.rng_state == snapshot.rng_state
        assert restored.population == snapshot.population
        assert restored.archive == snapshot.archive
        assert restored.best_power == snapshot.best_power
        assert restored.history == snapshot.history
        assert restored.statistics == snapshot.statistics

    def test_rng_state_resumes_stream(self, problem):
        snapshot = make_snapshot(problem)
        payload = json.loads(
            json.dumps(snapshot_to_dict(snapshot, "d"), sort_keys=True)
        )
        restored = snapshot_from_dict(payload)
        a = random.Random()
        a.setstate(snapshot.rng_state)
        b = random.Random()
        b.setstate(restored.rng_state)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_gene_order_survives_sorted_json(self, problem):
        # Gene insertion order drives RNG consumption in the operators;
        # it must survive json.dumps(sort_keys=True).
        rng = random.Random(3)
        chromosome = repair(random_chromosome(problem, rng), problem, rng)
        reordered = type(chromosome)(
            allocation=chromosome.allocation,
            keep_alive=chromosome.keep_alive,
            genes=dict(reversed(list(chromosome.genes.items()))),
        )
        payload = json.loads(json.dumps(reordered.to_dict(), sort_keys=True))
        restored = type(chromosome).from_dict(payload)
        assert list(restored.genes) == list(reordered.genes)


class TestCheckpointManager:
    def test_save_then_load_latest(self, problem, tmp_path):
        digest = problem_digest(problem)
        manager = CheckpointManager(tmp_path, digest)
        path = manager.save(make_snapshot(problem, generation=2))
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))
        loaded = manager.load_latest()
        assert loaded is not None
        snapshot, loaded_path = loaded
        assert snapshot.generation == 2
        assert loaded_path == path

    def test_latest_wins(self, problem, tmp_path):
        manager = CheckpointManager(tmp_path, problem_digest(problem))
        manager.save(make_snapshot(problem, generation=1))
        manager.save(make_snapshot(problem, generation=5))
        snapshot, _path = manager.load_latest()
        assert snapshot.generation == 5

    def test_prunes_old_snapshots(self, problem, tmp_path):
        manager = CheckpointManager(tmp_path, problem_digest(problem), keep=2)
        for generation in range(5):
            manager.save(make_snapshot(problem, generation=generation))
        names = [p.name for p in manager.snapshot_paths()]
        assert names == ["checkpoint-00000003.json", "checkpoint-00000004.json"]

    def test_corrupt_snapshot_skipped(self, problem, tmp_path):
        manager = CheckpointManager(tmp_path, problem_digest(problem))
        manager.save(make_snapshot(problem, generation=1))
        manager.path_for(2).write_text("{ truncated")
        snapshot, _path = manager.load_latest()
        assert snapshot.generation == 1

    def test_unknown_version_skipped(self, problem, tmp_path):
        manager = CheckpointManager(tmp_path, problem_digest(problem))
        manager.save(make_snapshot(problem, generation=1))
        payload = json.loads(manager.path_for(1).read_text())
        payload["version"] = SNAPSHOT_VERSION + 1
        manager.path_for(2).write_text(json.dumps(payload))
        snapshot, _path = manager.load_latest()
        assert snapshot.generation == 1

    def test_tmp_file_never_considered(self, problem, tmp_path):
        manager = CheckpointManager(tmp_path, problem_digest(problem))
        (tmp_path / "checkpoint-00000009.json.tmp").write_text("{}")
        assert manager.load_latest() is None

    def test_digest_mismatch_raises(self, problem, tmp_path):
        CheckpointManager(tmp_path, problem_digest(problem)).save(
            make_snapshot(problem, generation=1)
        )
        other = CheckpointManager(tmp_path, "0" * 64)
        with pytest.raises(CheckpointError):
            other.load_latest()

    def test_empty_directory_returns_none(self, problem, tmp_path):
        manager = CheckpointManager(tmp_path, problem_digest(problem))
        assert manager.load_latest() is None


class TestExplorerResume:
    def test_resume_matches_uninterrupted_run(self, problem, tmp_path):
        reference = Explorer(problem, small_config(generations=6)).run()
        Explorer(
            problem,
            small_config(
                generations=3,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
            ),
        ).run()
        resumed = Explorer(
            problem,
            small_config(
                generations=6,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
                resume=True,
            ),
        ).run()
        assert front(resumed) == front(reference)
        assert resumed.history == reference.history
        assert (
            resumed.statistics.to_dict() == reference.statistics.to_dict()
        )

    def test_resume_without_checkpoint_starts_fresh(self, problem, tmp_path):
        config = small_config(
            checkpoint_dir=str(tmp_path), checkpoint_every=2, resume=True
        )
        result = Explorer(problem, config).run()
        reference = Explorer(problem, small_config()).run()
        assert front(result) == front(reference)

    def test_checkpoints_written_at_interval(self, problem, tmp_path):
        Explorer(
            problem,
            small_config(
                generations=5,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=2,
            ),
        ).run()
        names = sorted(p.name for p in tmp_path.glob("checkpoint-*.json"))
        # Boundaries exist for generations 0..4 (the final generation
        # breaks before breeding); every 2nd one is committed.
        assert names == [
            "checkpoint-00000000.json",
            "checkpoint-00000002.json",
            "checkpoint-00000004.json",
        ]

    def test_interrupt_writes_checkpoint_and_returns_partial(
        self, problem, tmp_path
    ):
        def interrupter(generation, _stats):
            if generation == 3:
                raise KeyboardInterrupt

        config = small_config(
            generations=8, checkpoint_dir=str(tmp_path), checkpoint_every=100
        )
        explorer = Explorer(problem, config)
        result = explorer.run(progress=interrupter)
        assert result.statistics.interrupted
        assert result.generations_run == 3
        # Beyond the interval checkpoint at generation 0, the interrupt
        # committed the last consistent boundary (generation 2).
        names = sorted(p.name for p in tmp_path.glob("checkpoint-*.json"))
        assert names == [
            "checkpoint-00000000.json",
            "checkpoint-00000002.json",
        ]

        resumed = Explorer(
            problem,
            small_config(
                generations=8,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=100,
                resume=True,
            ),
        ).run()
        reference = Explorer(problem, small_config(generations=8)).run()
        assert front(resumed) == front(reference)
        assert resumed.history == reference.history
