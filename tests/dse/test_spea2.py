"""Unit tests for the SPEA2 selector."""

import random

import pytest

from repro.dse.spea2 import Spea2Selector, dominates, pareto_filter
from repro.errors import ExplorationError


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_no_self_dominance(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_incomparable(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExplorationError):
            dominates((1.0,), (1.0, 2.0))


class TestFitness:
    def test_nondominated_below_one(self):
        selector = Spea2Selector(archive_size=4)
        objectives = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (5.0, 5.0)]
        fitness = selector.fitness(objectives)
        # The first three are mutually non-dominated: raw fitness 0.
        assert all(f < 1.0 for f in fitness[:3])
        # The last is dominated by (2,2): raw fitness >= strength of it.
        assert fitness[3] >= 1.0

    def test_more_dominators_means_worse(self):
        selector = Spea2Selector(archive_size=4)
        objectives = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        fitness = selector.fitness(objectives)
        assert fitness[0] < fitness[1] < fitness[2]

    def test_empty(self):
        assert Spea2Selector(archive_size=1).fitness([]) == []


class TestEnvironmentalSelection:
    def test_keeps_all_nondominated_when_fit(self):
        selector = Spea2Selector(archive_size=3)
        objectives = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (5.0, 5.0)]
        chosen = selector.select(objectives)
        assert sorted(chosen) == [0, 1, 2]

    def test_fills_with_best_dominated(self):
        selector = Spea2Selector(archive_size=3)
        objectives = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]
        chosen = selector.select(objectives)
        assert len(chosen) == 3
        assert 0 in chosen and 1 in chosen and 2 in chosen

    def test_truncates_densest_region(self):
        selector = Spea2Selector(archive_size=3)
        # Four non-dominated points; (2.0, 2.9) and (2.1, 2.8) crowd.
        objectives = [(1.0, 4.0), (2.0, 2.9), (2.1, 2.8), (4.0, 1.0)]
        chosen = selector.select(objectives)
        assert len(chosen) == 3
        assert 0 in chosen and 3 in chosen  # extremes survive truncation

    def test_invalid_archive_size(self):
        with pytest.raises(ExplorationError):
            Spea2Selector(archive_size=0)


class TestTournament:
    def test_prefers_better_fitness(self):
        selector = Spea2Selector(archive_size=4)
        fitness = [0.1, 5.0, 9.0, 12.0]
        rng = random.Random(0)
        wins = [0] * 4
        for _ in range(300):
            wins[selector.tournament(fitness, rng)] += 1
        assert wins[0] > wins[3]

    def test_empty_pool_rejected(self):
        with pytest.raises(ExplorationError):
            Spea2Selector(archive_size=1).tournament([], random.Random(0))


class TestParetoFilter:
    def test_filters_dominated(self):
        objectives = [(1.0, 4.0), (2.0, 2.0), (3.0, 3.0), (4.0, 1.0)]
        assert pareto_filter(objectives) == [0, 1, 3]

    def test_all_nondominated(self):
        objectives = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        assert pareto_filter(objectives) == [0, 1, 2]

    def test_duplicates_survive(self):
        # Identical points do not dominate each other.
        objectives = [(1.0, 1.0), (1.0, 1.0)]
        assert pareto_filter(objectives) == [0, 1]
