"""Unit tests for the randomized repair heuristics."""

import random

import pytest

from repro.dse.chromosome import Chromosome, TaskGene, random_chromosome
from repro.dse.repair import repair
from repro.hardening.transform import harden
from repro.reliability.constraints import check_reliability


def build(problem, **overrides):
    rng = random.Random(0)
    chromosome = random_chromosome(problem, rng)
    genes = dict(chromosome.genes)
    genes.update(overrides.pop("genes", {}))
    return Chromosome(
        allocation=overrides.pop("allocation", chromosome.allocation),
        keep_alive=overrides.pop("keep_alive", chromosome.keep_alive),
        genes=genes,
    )


class TestStructuralRepair:
    def test_empty_allocation_fixed(self, problem):
        broken = build(problem, allocation=(False, False, False))
        repaired = repair(broken, problem, random.Random(1))
        assert any(repaired.allocation)

    def test_unallocated_mapping_fixed(self, problem):
        broken = build(
            problem,
            allocation=(True, True, False),
            genes={"a": TaskGene(processor="pe2")},
        )
        repaired = repair(broken, problem, random.Random(1))
        allocated = set(repaired.allocated_processors(problem))
        for gene in repaired.genes.values():
            assert gene.processor in allocated

    def test_orphan_passive_fixed(self, problem):
        broken = build(
            problem,
            genes={"a": TaskGene(processor="pe0", passive_replicas=("pe1", "pe2"))},
        )
        repaired = repair(broken, problem, random.Random(2))
        gene = repaired.genes["a"]
        if gene.is_replicated:
            gene.spec()  # must not raise

    def test_colocated_replicas_spread(self, problem):
        broken = build(
            problem,
            allocation=(True, True, True),
            genes={
                "a": TaskGene(
                    processor="pe0",
                    active_replicas=("pe0", "pe0"),
                    voter_processor="pe0",
                )
            },
        )
        repaired = repair(broken, problem, random.Random(3))
        gene = repaired.genes["a"]
        if gene.is_replicated:
            copies = (gene.processor,) + gene.active_replicas + gene.passive_replicas
            assert len(set(copies)) == len(copies)

    def test_oversized_group_collapses_to_reexecution(self, problem):
        broken = build(
            problem,
            allocation=(True, False, False),
            genes={
                "a": TaskGene(
                    processor="pe0",
                    active_replicas=("pe0", "pe0", "pe0"),
                    voter_processor="pe0",
                )
            },
        )
        repaired = repair(broken, problem, random.Random(4))
        gene = repaired.genes["a"]
        assert not gene.is_replicated
        assert gene.reexecutions >= 1

    def test_repaired_chromosome_decodes(self, problem):
        rng = random.Random(5)
        for _ in range(20):
            chromosome = repair(random_chromosome(problem, rng), problem, rng)
            design = chromosome.decode(problem)  # must not raise
            design.mapping.validate(
                harden(problem.applications, design.plan).applications,
                problem.architecture,
                allocated=design.allocation,
            )


class TestReliabilityRepair:
    def test_escalates_until_constraint_holds(self, problem):
        rng = random.Random(6)
        # Strip all hardening: the 1e-6 target of "hi" will be violated.
        base = random_chromosome(problem, rng, hardening_probability=0.0)
        repaired = repair(base, problem, rng, reliability_rounds=64)
        design = repaired.decode(problem)
        hardened = harden(problem.applications, design.plan)
        assert check_reliability(
            hardened, design.mapping, problem.architecture
        ) == []

    def test_bounded_rounds(self, problem):
        rng = random.Random(7)
        base = random_chromosome(problem, rng, hardening_probability=0.0)
        # Zero rounds: repair must return without reliability fixes.
        repaired = repair(base, problem, rng, reliability_rounds=0)
        assert repaired.decode(problem) is not None
