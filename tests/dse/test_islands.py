"""Island-model exploration: determinism, fault tolerance, merging.

The contract under test (see :mod:`repro.dse.islands`): for a fixed
``ExploreRequest`` (topology + seed included) the final front is
byte-identical regardless of execution mode, scheduling interleaving,
or mid-run island crashes followed by a resume.
"""

import json
import os

import pytest

from repro.core.problem import Problem
from repro.dse import ExploreRequest, Explorer, ExplorerConfig, IslandTopology
from repro.dse.islands import (
    has_island_state,
    island_seed,
    merge_island_results,
    run_explore,
    shard_config,
)
from repro.errors import ExplorationError
from repro.serve.encoding import exploration_result_to_dict


def _request(tmp_path=None, **overrides):
    options = dict(
        generations=6,
        population=12,
        seed=3,
        islands=3,
        migration_every=3,
        migrants=1,
    )
    options.update(overrides)
    if tmp_path is not None:
        options["checkpoint_dir"] = str(tmp_path / "state")
    return ExploreRequest.from_options("cruise", **options)


def _canonical(result) -> str:
    return json.dumps(exploration_result_to_dict(result), sort_keys=True)


class TestSingleIsland:
    def test_one_island_equals_plain_explorer(self, cruise_problem):
        request = _request(islands=1, generations=3, population=8, seed=5)
        via_islands = run_explore(request, execution="inline")
        direct = Explorer(cruise_problem, request.config).run()
        assert _canonical(via_islands) == _canonical(direct)


class TestDeterminism:
    def test_fixed_request_reproduces_byte_identically(self):
        first = run_explore(_request(), execution="inline")
        second = run_explore(_request(), execution="inline")
        assert _canonical(first) == _canonical(second)

    def test_inline_equals_process_execution(self):
        inline = run_explore(_request(), execution="inline")
        forked = run_explore(_request(), execution="process")
        assert _canonical(inline) == _canonical(forked)

    def test_all_topology_reproduces(self):
        first = run_explore(_request(topology="all"), execution="inline")
        second = run_explore(_request(topology="all"), execution="inline")
        assert _canonical(first) == _canonical(second)

    def test_topology_changes_trajectory_metadata(self):
        ring = run_explore(_request(), execution="inline")
        none = run_explore(_request(topology="none"), execution="inline")
        # Both are valid fronts; the point is they are *defined* by the
        # topology — equal requests reproduce, different ones may not.
        assert ring.generations_run == none.generations_run == 6


class TestFaultTolerance:
    def test_sigkilled_island_self_heals_to_identical_front(self, tmp_path):
        """SIGKILL one island mid-epoch; the retry resumes its checkpoints.

        The fault hook kills the worker exactly once (a marker file keeps
        the retried attempt alive), so the coordinator's retry replays
        the island from its last committed snapshot — and the final front
        must equal the uninterrupted run bit for bit.
        """
        reference = run_explore(_request(), execution="inline")

        env_key = "REPRO_ISLANDS_FAULT"
        os.environ[env_key] = "1:2"  # SIGKILL island 1 at generation 2
        try:
            healed = run_explore(_request(tmp_path), execution="process")
        finally:
            os.environ.pop(env_key, None)
        assert _canonical(healed) == _canonical(reference)

    def test_killed_coordinator_resumes_to_identical_front(self, tmp_path):
        """Partial island state + resume == the uninterrupted run.

        Emulates a coordinator killed after the first barrier: the
        islands' epoch checkpoints and the migration rewrite are on disk,
        the journal is not.  A resume picks up exactly there.
        """
        from repro.dse.islands import run_shard_epoch, run_shard_migration

        reference = run_explore(_request(), execution="inline")
        state = tmp_path / "state"
        partial = _request(tmp_path)
        for index in range(partial.topology.islands):
            run_shard_epoch(partial, state, index, 3)
        run_shard_migration(partial, state, 3)
        assert has_island_state(state)

        resumed = run_explore(
            _request(tmp_path, resume=True), execution="inline"
        )
        assert _canonical(resumed) == _canonical(reference)

    def test_fresh_run_wipes_stale_island_state(self, tmp_path):
        request = _request(tmp_path)
        first = run_explore(request, execution="inline")
        # Not resuming: the second run must not be contaminated by the
        # first run's completed state.
        again = run_explore(_request(tmp_path), execution="inline")
        assert _canonical(first) == _canonical(again)

    def test_journal_rejects_foreign_request(self, tmp_path):
        run_explore(_request(tmp_path), execution="inline")
        altered = _request(tmp_path, seed=4, resume=True)
        with pytest.raises(ExplorationError):
            run_explore(altered, execution="inline")


class TestSharding:
    def test_island_seeds_are_distinct_and_stable(self):
        seeds = [island_seed(3, i) for i in range(8)]
        assert len(set(seeds)) == 8
        assert seeds[0] == 3  # island 0 keeps the base seed
        assert seeds == [island_seed(3, i) for i in range(8)]

    def test_shard_config_splits_population(self, tmp_path):
        config = ExplorerConfig.from_options(population=32, generations=10)
        topology = IslandTopology(islands=4)
        shard = shard_config(config, topology, 2, str(tmp_path))
        assert shard.population_size == 8
        assert shard.archive_size == 8
        assert shard.generations == 10  # islands run the full horizon
        assert shard.seed == island_seed(config.seed, 2)
        assert shard.resume is True

    def test_merge_is_order_invariant(self):
        request = _request()
        result = run_explore(request, execution="inline")
        # Merging the merged result with itself in any order is stable.
        merged_ab = merge_island_results(
            [result, result], request.config.archive_size
        )
        merged_ba = merge_island_results(
            [result, result], request.config.archive_size
        )
        assert _canonical(merged_ab) == _canonical(merged_ba)


@pytest.fixture
def cruise_problem():
    from repro.suites import get_benchmark

    return Problem(
        applications=get_benchmark("cruise").problem.applications,
        architecture=get_benchmark("cruise").problem.architecture,
    )
