"""Unit tests for crossover and mutation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.chromosome import random_chromosome
from repro.dse.operators import crossover, mutate


class TestCrossover:
    def test_genes_come_from_parents(self, problem):
        rng = random.Random(0)
        a = random_chromosome(problem, rng)
        b = random_chromosome(problem, rng)
        child = crossover(a, b, rng)
        for name, gene in child.genes.items():
            assert gene in (a.genes[name], b.genes[name])
        for i, bit in enumerate(child.allocation):
            assert bit in (a.allocation[i], b.allocation[i])
        for i, bit in enumerate(child.keep_alive):
            assert bit in (a.keep_alive[i], b.keep_alive[i])

    def test_identical_parents_produce_clone(self, problem):
        rng = random.Random(1)
        a = random_chromosome(problem, rng)
        child = crossover(a, a, rng)
        assert child.key() == a.key()

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_sections_keep_sizes(self, seed):
        from repro.benchgen.tgff import generate_problem

        problem = generate_problem(seed=3, critical_graphs=1, droppable_graphs=1, processors=3)
        rng = random.Random(seed)
        a = random_chromosome(problem, rng)
        b = random_chromosome(problem, rng)
        child = crossover(a, b, rng)
        assert len(child.allocation) == len(a.allocation)
        assert len(child.keep_alive) == len(a.keep_alive)
        assert set(child.genes) == set(a.genes)


class TestMutation:
    def test_mutation_keeps_structure(self, problem):
        rng = random.Random(2)
        chromosome = random_chromosome(problem, rng)
        mutant = mutate(chromosome, problem, rng, gene_rate=1.0)
        assert len(mutant.allocation) == len(chromosome.allocation)
        assert set(mutant.genes) == set(chromosome.genes)
        assert any(mutant.allocation)  # never all-off

    def test_zero_rates_are_identity(self, problem):
        rng = random.Random(3)
        chromosome = random_chromosome(problem, rng)
        clone = mutate(
            chromosome,
            problem,
            rng,
            allocation_rate=0.0,
            keep_alive_rate=0.0,
            gene_rate=0.0,
        )
        assert clone.key() == chromosome.key()

    def test_high_rate_changes_something(self, problem):
        rng = random.Random(4)
        chromosome = random_chromosome(problem, rng)
        changed = False
        for _ in range(10):
            mutant = mutate(chromosome, problem, rng, gene_rate=1.0)
            if mutant.key() != chromosome.key():
                changed = True
                break
        assert changed

    def test_checkpoint_move_reachable(self, problem):
        from repro.dse.chromosome import TaskGene
        from repro.dse.operators import _mutate_gene
        from repro.hardening.spec import HardeningKind

        rng = random.Random(11)
        gene = TaskGene(processor="pe0", reexecutions=1)
        kinds = set()
        for _ in range(200):
            kinds.add(_mutate_gene(gene, ["pe0", "pe1", "pe2"], rng).spec().kind)
        assert HardeningKind.CHECKPOINT in kinds

    def test_checkpoint_toggles_back(self, problem):
        from repro.dse.chromosome import TaskGene
        from repro.dse.operators import _mutate_gene
        from repro.hardening.spec import HardeningKind

        rng = random.Random(12)
        gene = TaskGene(processor="pe0", reexecutions=1, checkpoints=3)
        kinds = set()
        for _ in range(200):
            kinds.add(_mutate_gene(gene, ["pe0", "pe1"], rng).spec().kind)
        assert HardeningKind.REEXECUTION in kinds

    def test_mutated_genes_use_known_processors(self, problem):
        rng = random.Random(5)
        names = set(problem.architecture.processor_names)
        for _ in range(20):
            chromosome = random_chromosome(problem, rng)
            mutant = mutate(chromosome, problem, rng, gene_rate=1.0)
            for gene in mutant.genes.values():
                assert gene.processor in names
                for replica in gene.active_replicas + gene.passive_replicas:
                    assert replica in names
