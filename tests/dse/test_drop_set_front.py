"""Unit tests for the per-drop-set Pareto view and Monte-Carlo stats."""

import pytest

from repro.core.problem import DesignPoint
from repro.dse.results import (
    ExplorationResult,
    ExplorationStatistics,
    ParetoPoint,
)
from repro.hardening.spec import HardeningPlan
from repro.model.mapping import Mapping


def point(power, service, dropped):
    design = DesignPoint(
        allocation=frozenset({"pe0"}),
        dropped=frozenset(dropped),
        plan=HardeningPlan(),
        mapping=Mapping({"t": "pe0"}),
    )
    return ParetoPoint(power=power, service=service, design=design)


def result_with(best_by_drop_set):
    return ExplorationResult(
        pareto=[],
        statistics=ExplorationStatistics(),
        history=[],
        generations_run=0,
        best_by_drop_set=best_by_drop_set,
    )


class TestDropSetFront:
    def test_dominated_sets_filtered(self):
        result = result_with(
            {
                ("a", "b"): point(1.0, 0.0, ("a", "b")),
                ("a",): point(2.0, 3.0, ("a",)),
                (): point(3.0, 5.0, ()),
                ("b",): point(3.5, 2.0, ("b",)),  # dominated by ("a",) and ()
            }
        )
        front = result.drop_set_front()
        assert [p.dropped for p in front] == [("a", "b"), ("a",), ()]

    def test_sorted_by_power(self):
        result = result_with(
            {
                (): point(5.0, 5.0, ()),
                ("a",): point(1.0, 2.0, ("a",)),
            }
        )
        front = result.drop_set_front()
        assert [p.power for p in front] == [1.0, 5.0]

    def test_empty(self):
        assert result_with({}).drop_set_front() == []

    def test_equal_points_both_survive(self):
        result = result_with(
            {
                ("a",): point(1.0, 2.0, ("a",)),
                ("b",): point(1.0, 2.0, ("b",)),
            }
        )
        assert len(result.drop_set_front()) == 2


class TestMonteCarloStats:
    def make(self):
        from repro.sim.montecarlo import MonteCarloResult

        result = MonteCarloResult()
        result.samples = {"g": [5.0, 1.0, 3.0, 2.0, 4.0]}
        result.worst_response = {"g": 5.0}
        return result

    def test_percentiles(self):
        result = self.make()
        assert result.percentile("g", 0.0) == 1.0
        assert result.percentile("g", 1.0) == 5.0
        assert result.percentile("g", 0.5) == 3.0

    def test_percentile_unknown_graph(self):
        assert self.make().percentile("nope", 0.5) is None

    def test_percentile_validates_quantile(self):
        with pytest.raises(ValueError):
            self.make().percentile("g", 1.5)

    def test_mean(self):
        assert self.make().mean_response("g") == pytest.approx(3.0)
        assert self.make().mean_response("nope") is None
