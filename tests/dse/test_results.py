"""Unit tests for exploration results and statistics."""

from repro.dse.results import ExplorationStatistics
from repro.hardening.spec import HardeningKind


class TestStatistics:
    def test_ratios_on_empty(self):
        stats = ExplorationStatistics()
        assert stats.dropping_gain_ratio == 0.0
        assert stats.dropping_gain_among_feasible == 0.0
        assert stats.reexecution_share == 0.0

    def test_ratios(self):
        stats = ExplorationStatistics(
            evaluations=200, feasible=50, dropping_gain=10
        )
        assert stats.dropping_gain_ratio == 0.05
        assert stats.dropping_gain_among_feasible == 0.2

    def test_hardening_accumulation(self):
        stats = ExplorationStatistics()
        stats.record_hardening({HardeningKind.REEXECUTION: 3})
        stats.record_hardening(
            {HardeningKind.REEXECUTION: 1, HardeningKind.ACTIVE: 2}
        )
        assert stats.hardening_histogram[HardeningKind.REEXECUTION] == 4
        assert stats.hardening_histogram[HardeningKind.ACTIVE] == 2
        assert stats.reexecution_share == 4 / 6
