"""Unit tests for the evaluation guard."""

import json

import pytest

from repro.core.evaluator import Evaluator
from repro.core.guard import (
    FALLBACK_BACKEND,
    GuardConfig,
    GuardedEvaluator,
    QuarantineLog,
)
from repro.dse.chromosome import random_chromosome
from repro.errors import EvaluationGuardError
from repro.obs.events import BackendFellBack, EvaluationFailed, capture

import random


def make_design(problem, seed=0):
    rng = random.Random(seed)
    from repro.dse.repair import repair

    chromosome = repair(random_chromosome(problem, rng), problem, rng)
    return chromosome.decode(problem)


class RaisingEvaluator(Evaluator):
    """Raises for the first ``failures`` evaluations, then succeeds."""

    def __init__(self, problem, failures=10**9, exc=RuntimeError("boom")):
        super().__init__(problem)
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def evaluate(self, design):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return super().evaluate(design)


class TestGuardConfig:
    def test_negative_retries_rejected(self):
        with pytest.raises(EvaluationGuardError):
            GuardConfig(retries=-1)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(EvaluationGuardError):
            GuardConfig(soft_budget_seconds=0.0)

    def test_defaults(self):
        config = GuardConfig()
        assert config.retries == 1
        assert config.soft_budget_seconds is None
        assert config.fallback is True


class TestQuarantineLog:
    def test_lazy_file_creation(self, tmp_path):
        log = QuarantineLog(tmp_path / "q.jsonl")
        assert not (tmp_path / "q.jsonl").exists()
        log.record({"stage": "evaluate"})
        assert (tmp_path / "q.jsonl").exists()
        assert log.records_written == 1
        log.close()

    def test_appends_jsonl(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with QuarantineLog(path) as log:
            log.record({"a": 1})
            log.record({"b": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}, {"b": 2}]

    def test_unserializable_record_disables_not_raises(self, tmp_path):
        log = QuarantineLog(tmp_path / "q.jsonl")
        log.record({"bad": object()})
        assert not log.active
        log.record({"ok": 1})  # silently dropped
        assert log.records_written == 0
        log.close()

    def test_uncreatable_directory_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(EvaluationGuardError):
            QuarantineLog(blocker / "sub" / "q.jsonl")


class TestGuardedEvaluator:
    def test_passthrough_on_success(self, problem):
        design = make_design(problem)
        plain = Evaluator(problem).evaluate(design)
        guarded = GuardedEvaluator(Evaluator(problem)).evaluate(design)
        assert guarded.feasible == plain.feasible
        assert guarded.power == plain.power
        assert guarded.fallback is None
        assert guarded.guard_error is None

    def test_retry_recovers_transient_failure(self, problem):
        design = make_design(problem)
        backend = RaisingEvaluator(problem, failures=1)
        guarded = GuardedEvaluator(backend, config=GuardConfig(retries=1))
        result = guarded.evaluate(design)
        assert backend.calls == 2
        assert result.guard_error is None

    def test_fallback_rescues_raising_backend(self, problem):
        design = make_design(problem)
        guarded = GuardedEvaluator(RaisingEvaluator(problem))
        with capture(BackendFellBack) as events:
            result = guarded.evaluate(design)
        assert result.fallback == FALLBACK_BACKEND
        # The fast-window fallback is the default evaluator, so the
        # rescued result matches a plain evaluation.
        plain = Evaluator(problem).evaluate(design)
        assert result.feasible == plain.feasible
        assert result.power == plain.power
        fell_back = events.of_type(BackendFellBack)
        assert fell_back and fell_back[0].reason == "error"

    def test_failure_becomes_infeasible_result(self, problem):
        design = make_design(problem)
        guarded = GuardedEvaluator(
            RaisingEvaluator(problem, exc=ValueError("bad state")),
            config=GuardConfig(retries=2, fallback=False),
        )
        with capture(EvaluationFailed) as events:
            result = guarded.evaluate(design)
        assert not result.feasible
        assert result.guard_error == "ValueError: bad state"
        assert any("guard[evaluate]" in v for v in result.violations)
        failed = events.of_type(EvaluationFailed)
        assert failed[0].attempts == 3
        assert failed[0].error_type == "ValueError"

    def test_soft_budget_triggers_fallback(self, problem):
        design = make_design(problem)

        class SlowEvaluator(Evaluator):
            def evaluate(self, design):
                import time

                time.sleep(0.02)
                return super().evaluate(design)

        guarded = GuardedEvaluator(
            SlowEvaluator(problem),
            config=GuardConfig(soft_budget_seconds=1e-6),
        )
        with capture(BackendFellBack) as events:
            result = guarded.evaluate(design)
        assert result.fallback == FALLBACK_BACKEND
        assert events.of_type(BackendFellBack)[0].reason == "budget"

    def test_over_budget_without_fallback_keeps_primary_result(self, problem):
        design = make_design(problem)
        guarded = GuardedEvaluator(
            Evaluator(problem),
            config=GuardConfig(soft_budget_seconds=1e-9, fallback=False),
        )
        result = guarded.evaluate(design)
        assert result.fallback is None
        assert result.guard_error is None

    def test_quarantine_records_poison_point(self, problem, tmp_path):
        design = make_design(problem)
        log = QuarantineLog(tmp_path / "q.jsonl")
        guarded = GuardedEvaluator(
            RaisingEvaluator(problem),
            config=GuardConfig(retries=0, fallback=False),
            quarantine=log,
        )
        guarded.evaluate(design, context={"key": "value"})
        log.close()
        lines = (tmp_path / "q.jsonl").read_text().splitlines()
        # a fresh guarded log starts with the self-describing header
        header = json.loads(lines[0])
        assert header["schema"] == "repro.verify.quarantine-header/1"
        assert "applications" in header and "architecture" in header
        record = json.loads(lines[1])
        assert record["stage"] == "evaluate"
        assert record["error_type"] == "RuntimeError"
        assert "Traceback" in record["traceback"]
        assert record["design"] == design.to_dict()
        assert record["context"] == {"key": "value"}

    def test_keyboard_interrupt_propagates(self, problem):
        design = make_design(problem)
        guarded = GuardedEvaluator(
            RaisingEvaluator(problem, exc=KeyboardInterrupt())
        )
        with pytest.raises(KeyboardInterrupt):
            guarded.evaluate(design)

    def test_failure_result_decode_stage(self, problem):
        guarded = GuardedEvaluator(Evaluator(problem))
        result = guarded.failure_result(
            TypeError("broken gene"), stage="decode"
        )
        assert not result.feasible
        assert result.design is None
        assert result.violations == ["guard[decode]: TypeError: broken gene"]
