"""Unit tests for Algorithm 1 (MixedCriticalityAnalysis)."""

import pytest

from repro.core.analysis import MixedCriticalityAnalysis
from repro.errors import AnalysisError
from repro.hardening.spec import HardeningKind, HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph


class TestBasics:
    def test_invalid_granularity_rejected(self):
        with pytest.raises(AnalysisError):
            MixedCriticalityAnalysis(granularity="bogus")

    def test_no_hardening_no_transitions(self, apps, architecture):
        hardened = harden(apps, HardeningPlan())
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        result = MixedCriticalityAnalysis().analyze(hardened, architecture, flat)
        assert result.transitions_analyzed == 0
        for verdict in result.verdicts.values():
            assert verdict.wcrt == verdict.normal_wcrt
            assert verdict.worst_transition is None

    def test_transition_count_job_granularity(self, hardened, architecture, mapping):
        result = MixedCriticalityAnalysis(granularity="job").analyze(
            hardened, architecture, mapping
        )
        # a (re-exec) has 1 instance/hyperperiod; b (passive) has 1 -> 2.
        assert result.transitions_analyzed == 2

    def test_transition_count_task_granularity(self, hardened, architecture, mapping):
        result = MixedCriticalityAnalysis(granularity="task").analyze(
            hardened, architecture, mapping
        )
        assert result.transitions_analyzed == 2

    def test_unknown_graph_lookup_raises(self, hardened, architecture, mapping):
        result = MixedCriticalityAnalysis().analyze(hardened, architecture, mapping)
        with pytest.raises(AnalysisError):
            result.wcrt_of("ghost")
        with pytest.raises(AnalysisError):
            result.completion_bound("ghost")

    def test_drop_set_validated(self, hardened, architecture, mapping):
        with pytest.raises(Exception):
            MixedCriticalityAnalysis().analyze(
                hardened, architecture, mapping, dropped=["hi"]
            )


class TestStateAdjustment:
    def test_wcrt_at_least_normal(self, hardened, architecture, mapping):
        result = MixedCriticalityAnalysis().analyze(hardened, architecture, mapping)
        for verdict in result.verdicts.values():
            assert verdict.wcrt >= verdict.normal_wcrt - 1e-9

    def test_reexecution_inflates_wcrt(self, apps, architecture):
        plain = harden(apps, HardeningPlan())
        hardened = harden(apps, HardeningPlan({"a": HardeningSpec.reexecution(2)}))
        flat = Mapping({t: "pe0" for t in apps.all_task_names})
        analysis = MixedCriticalityAnalysis()
        base = analysis.analyze(plain, architecture, flat)
        inflated = analysis.analyze(hardened, architecture, flat)
        assert inflated.wcrt_of("hi") > base.wcrt_of("hi")

    def test_dropping_relieves_critical_app(self, architecture):
        # High-priority droppable shares the PE with a re-executable
        # critical chain: dropping it must not increase (and typically
        # decreases) the critical WCRT.
        critical = TaskGraph(
            "crit",
            tasks=[Task("c0", 2.0, 4.0, detection_overhead=0.5), Task("c1", 2.0, 4.0)],
            channels=[Channel("c0", "c1", 0.0)],
            period=40.0,
            reliability_target=1e-6,
        )
        noisy = TaskGraph(
            "noisy",
            tasks=[Task("n0", 2.0, 5.0)],
            channels=[],
            period=10.0,
            service_value=1.0,
        )
        apps = ApplicationSet([critical, noisy])
        hardened = harden(apps, HardeningPlan({"c0": HardeningSpec.reexecution(2)}))
        flat = Mapping({"c0": "pe0", "c1": "pe0", "n0": "pe0"})
        analysis = MixedCriticalityAnalysis()
        kept = analysis.analyze(hardened, architecture, flat, dropped=())
        dropped = analysis.analyze(hardened, architecture, flat, dropped=("noisy",))
        assert dropped.wcrt_of("crit") <= kept.wcrt_of("crit") + 1e-9

    def test_task_granularity_is_conservative(self, hardened, architecture, mapping):
        job_level = MixedCriticalityAnalysis(granularity="job").analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        task_level = MixedCriticalityAnalysis(granularity="task").analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        for graph in ("hi",):
            assert task_level.wcrt_of(graph) >= job_level.wcrt_of(graph) - 1e-9

    def test_zero_dropped_bcet_is_more_pessimistic(
        self, hardened, architecture, mapping
    ):
        refined = MixedCriticalityAnalysis(zero_dropped_bcet=False).analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        literal = MixedCriticalityAnalysis(zero_dropped_bcet=True).analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        assert literal.wcrt_of("hi") >= refined.wcrt_of("hi") - 1e-9

    def test_completion_bounds_cover_all_tasks(self, hardened, architecture, mapping):
        result = MixedCriticalityAnalysis().analyze(hardened, architecture, mapping)
        for task in hardened.applications.all_tasks:
            assert result.completion_bound(task.name) >= 0.0

    def test_transition_metadata(self, hardened, architecture, mapping):
        result = MixedCriticalityAnalysis().analyze(hardened, architecture, mapping)
        by_primary = {t.trigger_primary: t for t in result.transitions}
        assert by_primary["a"].trigger_kind is HardeningKind.REEXECUTION
        assert by_primary["b"].trigger_kind is HardeningKind.PASSIVE
        for transition in result.transitions:
            assert transition.min_start <= transition.max_finish


class TestVerdicts:
    def test_deadline_satisfaction(self, hardened, architecture, mapping):
        result = MixedCriticalityAnalysis().analyze(hardened, architecture, mapping)
        for verdict in result.verdicts.values():
            assert verdict.meets_deadline == (
                verdict.wcrt <= verdict.deadline + 1e-9
            )

    def test_dropped_graph_checked_in_normal_state_only(
        self, hardened, architecture, mapping
    ):
        result = MixedCriticalityAnalysis().analyze(
            hardened, architecture, mapping, dropped=("lo",)
        )
        verdict = result.verdicts["lo"]
        assert verdict.dropped
        assert verdict.wcrt == verdict.normal_wcrt

    def test_schedulable_aggregate(self, hardened, architecture, mapping):
        result = MixedCriticalityAnalysis().analyze(hardened, architecture, mapping)
        assert result.schedulable == all(
            v.meets_deadline for v in result.verdicts.values()
        )
