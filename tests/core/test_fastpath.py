"""Fast-path correctness: memoization, warm starts, dominated-transition
pruning, and the canonical job-set fingerprint.

The load-bearing property: every fast-path combination returns results
*identical* to a cold run — not approximately equal, byte-identical —
across the built-in suites and random TGFF systems.
"""

import random

import pytest

from repro.benchgen.tgff import generate_problem
from repro.core import (
    FastPathConfig,
    MixedCriticalityAnalysis,
    ScheduleCache,
    TransitionPruner,
)
from repro.dse.chromosome import heuristic_chromosome
from repro.errors import AnalysisError
from repro.hardening.transform import harden
from repro.obs.metrics import metrics
from repro.sched.holistic import HolisticAnalysisBackend
from repro.sched.wcrt import ScheduleBounds, WindowAnalysisBackend
from repro.suites import benchmark_names, get_benchmark


def _suite_case(name):
    problem = get_benchmark(name).problem
    design = heuristic_chromosome(problem, random.Random(3)).decode(problem)
    return problem, design, harden(problem.applications, design.plan)


def _tgff_case(seed):
    problem = generate_problem(
        seed=seed, critical_graphs=2, droppable_graphs=2, processors=3
    )
    design = heuristic_chromosome(problem, random.Random(seed)).decode(problem)
    return problem, design, harden(problem.applications, design.plan)


def _analyze(problem, design, hardened, backend, fast_path):
    analysis = MixedCriticalityAnalysis(
        backend=backend,
        granularity="task",
        comm=problem.comm_model(),
        fast_path=fast_path,
    )
    return analysis.analyze(
        hardened, problem.architecture, design.mapping, design.dropped
    )


class TestColdFastEquivalence:
    """Memoization + warm start must be invisible in the results."""

    @pytest.mark.parametrize("suite", benchmark_names())
    @pytest.mark.parametrize(
        "backend_factory", [WindowAnalysisBackend, HolisticAnalysisBackend]
    )
    def test_suites_identical(self, suite, backend_factory):
        problem, design, hardened = _suite_case(suite)
        cold = _analyze(problem, design, hardened, backend_factory(), None)
        fast = _analyze(
            problem, design, hardened, backend_factory(), FastPathConfig()
        )
        assert cold == fast  # full dataclass equality, transitions included

    @pytest.mark.parametrize("seed", [1, 17, 91])
    def test_random_tgff_identical(self, seed):
        problem, design, hardened = _tgff_case(seed)
        for backend_factory in (WindowAnalysisBackend, HolisticAnalysisBackend):
            cold = _analyze(problem, design, hardened, backend_factory(), None)
            fast = _analyze(
                problem, design, hardened, backend_factory(), FastPathConfig()
            )
            assert cold == fast

    @pytest.mark.parametrize("suite", benchmark_names())
    def test_pruning_preserves_reported_bounds(self, suite):
        problem, design, hardened = _suite_case(suite)
        cold = _analyze(problem, design, hardened, WindowAnalysisBackend(), None)
        pruned = _analyze(
            problem, design, hardened, WindowAnalysisBackend(),
            FastPathConfig.for_dse(),
        )
        assert pruned.verdicts == cold.verdicts
        assert pruned.task_completion == cold.task_completion
        assert (
            pruned.transitions_analyzed + pruned.transitions_pruned
            == cold.transitions_analyzed
        )

    def test_shared_cache_across_analyze_calls(self, hardened, architecture, mapping):
        fast_path = FastPathConfig()
        analysis = MixedCriticalityAnalysis(
            granularity="task", fast_path=fast_path
        )
        registry = metrics()
        registry.reset()
        first = analysis.analyze(hardened, architecture, mapping)
        invocations = registry.counter("sched.invocations").value
        assert invocations > 0
        second = analysis.analyze(hardened, architecture, mapping)
        # Every sched() of the repeat run is served from the cache.
        assert registry.counter("sched.invocations").value == invocations
        assert first == second

    def test_sweep_invocation_pairing_survives_cache_hits(
        self, hardened, architecture, mapping
    ):
        registry = metrics()
        registry.reset()
        analysis = MixedCriticalityAnalysis(
            granularity="task", fast_path=FastPathConfig()
        )
        analysis.analyze(hardened, architecture, mapping)
        analysis.analyze(hardened, architecture, mapping)
        snap = registry.snapshot()
        assert (
            snap["histograms"]["sched.sweeps"]["count"]
            == snap["counters"]["sched.invocations"]
        )


class TestFingerprint:
    def test_equal_for_identical_builds(self, hardened, architecture, mapping):
        analysis = MixedCriticalityAnalysis()
        a = analysis._base_jobset(hardened, architecture, mapping)
        b = analysis._base_jobset(hardened, architecture, mapping)
        assert a.fingerprint() == b.fingerprint()

    def test_bounds_override_changes_fingerprint(
        self, hardened, architecture, mapping
    ):
        analysis = MixedCriticalityAnalysis()
        base = analysis._base_jobset(hardened, architecture, mapping)
        job = base.analyzed_jobs[0]
        widened = base.with_bounds({job.job_id: (job.bcet, job.wcet + 1.0)})
        assert widened.fingerprint() != base.fingerprint()
        # ... and an identity override fingerprints back to the original.
        same = base.with_bounds({job.job_id: (job.bcet, job.wcet)})
        assert same.fingerprint() == base.fingerprint()


class TestScheduleCache:
    def _bounds(self):
        return object()  # the cache never inspects its values

    def test_lru_eviction(self):
        cache = ScheduleCache(capacity=2)
        a, b, c = self._bounds(), self._bounds(), self._bounds()
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # refreshes "a"
        cache.put("c", c)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") is a
        assert cache.get("c") is c
        assert len(cache) == 2

    def test_hit_miss_tallies(self):
        cache = ScheduleCache(capacity=4)
        cache.put("k", self._bounds())
        cache.get("k")
        cache.get("absent")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(AnalysisError):
            ScheduleCache(capacity=0)


class TestWarmStart:
    def test_incompatible_seed_is_rejected(self, hardened, architecture, mapping):
        """A seed from a *different* structure falls back to a cold start."""
        registry = metrics()
        registry.reset()
        analysis = MixedCriticalityAnalysis(backend=HolisticAnalysisBackend())
        base = analysis._base_jobset(hardened, architecture, mapping)
        backend = HolisticAnalysisBackend()
        cold = backend.analyze(base)

        bogus_state = dict(cold.holistic_state)
        bogus_state["signature"] = ("something", "else")
        seed = ScheduleBounds(
            base,
            list(cold._min_start),
            list(cold._min_finish),
            list(cold._max_start),
            list(cold._max_finish),
            converged=True,
            sweeps=cold.sweeps,
        )
        seed.holistic_state = bogus_state
        reanalyzed = backend.analyze(base, seed=seed)
        assert registry.counter("analysis.warmstart.rejected").value == 1
        assert reanalyzed.holistic_state["response"] == cold.holistic_state["response"]

    def test_wcet_shrink_rejects_seed(self, hardened, architecture, mapping):
        """Seeds above the new fixed point would be unsound: rejected."""
        registry = metrics()
        registry.reset()
        backend = HolisticAnalysisBackend()
        analysis = MixedCriticalityAnalysis(backend=HolisticAnalysisBackend())
        base = analysis._base_jobset(hardened, architecture, mapping)
        job = base.analyzed_jobs[0]
        widened = base.with_bounds({job.job_id: (job.bcet, job.wcet + 5.0)})
        seed = backend.analyze(widened)
        narrow = backend.analyze(base, seed=seed)
        assert registry.counter("analysis.warmstart.rejected").value == 1
        assert narrow.holistic_state == backend.analyze(base).holistic_state

    def test_seeded_run_matches_cold(self, hardened, architecture, mapping):
        backend = HolisticAnalysisBackend()
        analysis = MixedCriticalityAnalysis(backend=HolisticAnalysisBackend())
        base = analysis._base_jobset(hardened, architecture, mapping)
        normal = backend.analyze(base)
        job = base.analyzed_jobs[0]
        widened = base.with_bounds({job.job_id: (job.bcet, job.wcet * 2.0)})
        warm = backend.analyze(widened, seed=normal)
        cold = HolisticAnalysisBackend().analyze(widened)
        assert warm.holistic_state["response"] == cold.holistic_state["response"]
        assert warm.holistic_state["jitter"] == cold.holistic_state["jitter"]
        assert warm.sweeps <= cold.sweeps


class TestTransitionPruner:
    def test_containment_domination(self, hardened, architecture, mapping):
        analysis = MixedCriticalityAnalysis()
        base = analysis._base_jobset(hardened, architecture, mapping)
        pruner = TransitionPruner(base)
        job_a, job_b = base.analyzed_jobs[0], base.analyzed_jobs[1]
        wide = {job_a.job_id: (0.0, job_a.wcet + 10.0)}
        narrow = {job_a.job_id: (job_a.bcet, job_a.wcet + 1.0)}
        sideways = {job_b.job_id: (0.0, job_b.wcet + 1.0)}

        assert not pruner.is_dominated(wide)
        pruner.record(wide)
        assert pruner.is_dominated(narrow)
        # Nominal-bounds transition (empty override) is always covered.
        assert pruner.is_dominated({})
        # An override on a job the recorded transition left nominal is not.
        assert not pruner.is_dominated(sideways)
