"""Unit tests for the sensitivity analysis utilities."""

import pytest

from repro.core.analysis import MixedCriticalityAnalysis
from repro.core.sensitivity import (
    deadline_margins,
    scale_execution_times,
    wcet_scaling_margin,
)
from repro.errors import AnalysisError
from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import harden


class TestScaling:
    def test_scales_all_timing_fields(self, apps):
        scaled = scale_execution_times(apps, 2.0)
        original = apps.task("a")
        task = scaled.task("a")
        assert task.wcet == 2 * original.wcet
        assert task.bcet == 2 * original.bcet
        assert task.detection_overhead == 2 * original.detection_overhead
        assert task.voting_overhead == 2 * original.voting_overhead

    def test_periods_untouched(self, apps):
        scaled = scale_execution_times(apps, 3.0)
        assert scaled.graph("hi").period == apps.graph("hi").period
        assert scaled.graph("hi").deadline == apps.graph("hi").deadline

    def test_invalid_factor_rejected(self, apps):
        with pytest.raises(AnalysisError):
            scale_execution_times(apps, 0.0)

    def test_identity(self, apps):
        scaled = scale_execution_times(apps, 1.0)
        assert scaled.graph("hi") == apps.graph("hi")


class TestWcetMargin:
    def test_margin_is_schedulable_boundary(self, apps, plan, architecture, mapping):
        margin = wcet_scaling_margin(
            apps, plan, architecture, mapping, dropped=("lo",), tolerance=0.05
        )
        assert margin > 1.0  # the toy system has headroom

        analysis = MixedCriticalityAnalysis(granularity="task")
        hardened_at = harden(scale_execution_times(apps, margin), plan)
        assert analysis.analyze(
            hardened_at, architecture, mapping, ("lo",)
        ).schedulable
        hardened_beyond = harden(
            scale_execution_times(apps, margin + 0.11), plan
        )
        assert not analysis.analyze(
            hardened_beyond, architecture, mapping, ("lo",)
        ).schedulable

    def test_infeasible_design_has_zero_margin(self, apps, plan, architecture, mapping):
        tight = scale_execution_times(apps, 10.0)
        margin = wcet_scaling_margin(
            tight, plan, architecture, mapping, dropped=("lo",)
        )
        assert margin == 0.0

    def test_saturates_at_upper(self, apps, plan, architecture, mapping):
        loose = scale_execution_times(apps, 0.01)
        margin = wcet_scaling_margin(
            loose, plan, architecture, mapping, dropped=("lo",), upper=2.0
        )
        assert margin == 2.0

    def test_dropping_increases_margin(self, apps, plan, architecture, mapping):
        kept = wcet_scaling_margin(
            apps, plan, architecture, mapping, dropped=(), tolerance=0.05
        )
        dropped = wcet_scaling_margin(
            apps, plan, architecture, mapping, dropped=("lo",), tolerance=0.05
        )
        assert dropped >= kept - 0.06

    def test_invalid_tolerance(self, apps, plan, architecture, mapping):
        with pytest.raises(AnalysisError):
            wcet_scaling_margin(
                apps, plan, architecture, mapping, tolerance=0.0
            )


class TestDeadlineMargins:
    def test_margins_match_analysis(self, apps, plan, architecture, mapping):
        margins = deadline_margins(
            apps, plan, architecture, mapping, dropped=("lo",)
        )
        analysis = MixedCriticalityAnalysis(granularity="task")
        hardened = harden(apps, plan)
        result = analysis.analyze(hardened, architecture, mapping, ("lo",))
        for name, margin in margins.items():
            verdict = result.verdicts[name]
            assert margin == pytest.approx(verdict.deadline / verdict.wcrt)

    def test_headroom_iff_schedulable(self, apps, plan, architecture, mapping):
        margins = deadline_margins(
            apps, plan, architecture, mapping, dropped=("lo",)
        )
        hardened = harden(apps, plan)
        result = MixedCriticalityAnalysis(granularity="task").analyze(
            hardened, architecture, mapping, ("lo",)
        )
        for name, verdict in result.verdicts.items():
            assert (margins[name] >= 1.0) == verdict.meets_deadline
