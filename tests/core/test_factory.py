"""The unified analysis factory and the AnalysisMethod protocol."""

import pytest

from repro.core import (
    AdhocAnalysis,
    AnalysisMethod,
    FastPathConfig,
    MixedCriticalityAnalysis,
    NaiveAnalysis,
    make_analysis,
    make_backend,
)
from repro.errors import AnalysisError
from repro.sched.fast import FastWindowAnalysisBackend
from repro.sched.holistic import HolisticAnalysisBackend
from repro.sched.wcrt import WindowAnalysisBackend


class TestMakeBackend:
    def test_registry(self):
        assert isinstance(make_backend("window"), WindowAnalysisBackend)
        assert isinstance(make_backend("fast"), FastWindowAnalysisBackend)
        assert isinstance(make_backend("holistic"), HolisticAnalysisBackend)

    def test_unknown_name(self):
        with pytest.raises(AnalysisError, match="unknown sched backend"):
            make_backend("quantum")


class TestMakeAnalysis:
    def test_method_routing(self):
        assert isinstance(make_analysis("proposed"), MixedCriticalityAnalysis)
        assert isinstance(make_analysis("naive"), NaiveAnalysis)
        assert isinstance(make_analysis("adhoc"), AdhocAnalysis)

    def test_unknown_method(self):
        with pytest.raises(AnalysisError, match="unknown analysis method"):
            make_analysis("hopeful")

    def test_every_method_satisfies_protocol(self):
        for method in ("proposed", "naive", "adhoc"):
            assert isinstance(make_analysis(method), AnalysisMethod)

    def test_backend_by_name_or_instance(self):
        by_name = make_analysis("proposed", backend="holistic")
        assert isinstance(by_name._backend, HolisticAnalysisBackend)
        instance = WindowAnalysisBackend()
        by_instance = make_analysis("proposed", backend=instance)
        assert by_instance._backend is instance

    def test_fast_path_spellings(self):
        assert make_analysis("proposed")._fast_path is None
        assert make_analysis("proposed", fast_path=False)._fast_path is None
        enabled = make_analysis("proposed", fast_path=True)._fast_path
        assert isinstance(enabled, FastPathConfig)
        explicit = FastPathConfig(cache_size=7)
        assert make_analysis("proposed", fast_path=explicit)._fast_path is explicit

    def test_methods_interchangeable(self, hardened, architecture, mapping):
        """Every factory product runs the same analyze() call."""
        for method in ("proposed", "naive", "adhoc"):
            result = make_analysis(method).analyze(
                hardened, architecture, mapping, ("lo",)
            )
            assert set(result.verdicts) == {"hi", "lo"}
            assert result.verdicts["lo"].dropped


class TestDeprecationShims:
    def test_naive_warns_on_foreign_kwargs(self):
        with pytest.warns(DeprecationWarning, match="make_analysis"):
            NaiveAnalysis(granularity="task")

    def test_adhoc_warns_on_foreign_kwargs(self):
        with pytest.warns(DeprecationWarning, match="make_analysis"):
            AdhocAnalysis(backend=WindowAnalysisBackend(), bus_contention=True)

    def test_shims_change_no_behavior(self, hardened, architecture, mapping):
        import warnings

        clean = NaiveAnalysis().analyze(hardened, architecture, mapping)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = NaiveAnalysis(granularity="job", fast_path=None).analyze(
                hardened, architecture, mapping
            )
        assert clean == shimmed
