"""Unit tests for the Naive and Adhoc baseline analyses."""

import pytest

from repro.core.adhoc import AdhocAnalysis
from repro.core.analysis import MixedCriticalityAnalysis
from repro.core.naive import NaiveAnalysis
from repro.sim.engine import Simulator
from repro.sim.faults import adhoc_profile
from repro.sim.sampler import WorstCaseSampler


class TestNaive:
    def test_upper_bounds_proposed(self, hardened, architecture, mapping):
        dropped = ("lo",)
        proposed = MixedCriticalityAnalysis().analyze(
            hardened, architecture, mapping, dropped
        )
        naive = NaiveAnalysis().analyze(hardened, architecture, mapping, dropped)
        for graph in hardened.applications.graph_names:
            if graph in dropped:
                continue
            assert naive.wcrt_of(graph) >= proposed.wcrt_of(graph) - 1e-9

    def test_no_transitions_recorded(self, hardened, architecture, mapping):
        naive = NaiveAnalysis().analyze(hardened, architecture, mapping)
        assert naive.transitions_analyzed == 0
        assert naive.granularity == "static"

    def test_naive_at_least_normal_state(self, hardened, architecture, mapping):
        proposed = MixedCriticalityAnalysis().analyze(hardened, architecture, mapping)
        naive = NaiveAnalysis().analyze(hardened, architecture, mapping)
        for graph, verdict in proposed.verdicts.items():
            assert naive.wcrt_of(graph) >= verdict.normal_wcrt - 1e-9


class TestAdhoc:
    def test_matches_forced_worst_trace(self, hardened, architecture, mapping):
        dropped = ("lo",)
        adhoc = AdhocAnalysis().analyze(hardened, architecture, mapping, dropped)
        simulator = Simulator(hardened, architecture, mapping, dropped=dropped)
        trace = simulator.run(
            profile=adhoc_profile(hardened),
            sampler=WorstCaseSampler(),
            drop_from_start=True,
        )
        for graph in hardened.applications.graph_names:
            observed = trace.graph_response_time(graph)
            expected = 0.0 if observed is None else observed
            assert adhoc.wcrt_of(graph) == pytest.approx(expected)

    def test_dropped_graph_reports_zero(self, hardened, architecture, mapping):
        adhoc = AdhocAnalysis().analyze(hardened, architecture, mapping, ("lo",))
        assert adhoc.wcrt_of("lo") == 0.0
        assert adhoc.verdicts["lo"].dropped

    def test_proposed_upper_bounds_adhoc(self, hardened, architecture, mapping):
        dropped = ("lo",)
        proposed = MixedCriticalityAnalysis().analyze(
            hardened, architecture, mapping, dropped
        )
        adhoc = AdhocAnalysis().analyze(hardened, architecture, mapping, dropped)
        for graph in hardened.applications.graph_names:
            if graph in dropped:
                continue
            assert proposed.wcrt_of(graph) >= adhoc.wcrt_of(graph) - 1e-9
