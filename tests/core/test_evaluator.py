"""Unit tests for design-point evaluation."""

import pytest

from repro.core.evaluator import Evaluator
from repro.core.problem import DesignPoint, Problem
from repro.errors import ModelError
from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.model.mapping import Mapping


@pytest.fixture
def evaluator(problem):
    return Evaluator(problem)


def design(plan, mapping, allocation=("pe0", "pe1", "pe2"), dropped=()):
    return DesignPoint(
        allocation=frozenset(allocation),
        dropped=frozenset(dropped),
        plan=plan,
        mapping=mapping,
    )


@pytest.fixture
def good_design(plan, mapping):
    return design(plan, mapping, dropped=("lo",))


class TestFeasibleDesign:
    def test_evaluates_feasible(self, evaluator, good_design):
        result = evaluator.evaluate(good_design)
        assert result.feasible, result.violations
        assert result.power > 0
        assert result.service == 0.0  # lo dropped
        assert result.analysis is not None
        assert result.severity == 0.0

    def test_objectives_vector(self, evaluator, good_design):
        result = evaluator.evaluate(good_design)
        assert result.objectives == (result.power, -result.service)

    def test_keeping_droppable_raises_service(self, evaluator, plan, mapping):
        result = evaluator.evaluate(design(plan, mapping, dropped=()))
        assert result.service == 5.0


class TestViolations:
    def test_missing_mapping(self, evaluator, plan, mapping):
        partial = Mapping({"a": "pe0"})
        result = evaluator.evaluate(design(plan, partial))
        assert not result.feasible
        assert any("mapping" in v for v in result.violations)
        assert result.power is None

    def test_unallocated_processor(self, evaluator, plan, mapping):
        result = evaluator.evaluate(design(plan, mapping, allocation=("pe0", "pe1")))
        assert not result.feasible
        assert any("mapping" in v for v in result.violations)

    def test_colocated_replicas(self, evaluator, plan, mapping):
        bad = mapping.with_assignment("b#r1", "pe0")  # b is also on pe0
        result = evaluator.evaluate(design(plan, bad))
        assert any("replication" in v for v in result.violations)
        assert result.severity > 0

    def test_reliability_violation(self, evaluator, mapping):
        # No hardening at all: the 1e-6 target of "hi" cannot hold.
        result = evaluator.evaluate(design(HardeningPlan(), mapping))
        assert any("reliability" in v for v in result.violations)

    def test_empty_allocation_rejected(self, plan, mapping):
        with pytest.raises(ModelError):
            DesignPoint(
                allocation=frozenset(),
                dropped=frozenset(),
                plan=plan,
                mapping=mapping,
            )

    def test_penalty_dominates_feasible(self, evaluator, plan, mapping, good_design):
        feasible = evaluator.evaluate(good_design)
        infeasible = evaluator.evaluate(design(HardeningPlan(), mapping))
        assert infeasible.objectives[0] > feasible.objectives[0]
        assert infeasible.objectives[1] > feasible.objectives[1]

    def test_severity_grades_penalty(self, evaluator, plan, mapping):
        # A mild reliability miss is penalised less than a co-located
        # replica group (severity 10 per placement violation).
        mild = evaluator.evaluate(design(HardeningPlan(), mapping))
        bad_mapping = mapping.with_assignment("b#r1", "pe0")
        severe = evaluator.evaluate(design(plan, bad_mapping))
        assert severe.objectives[0] > mild.objectives[0]


class TestWithoutDropping:
    def test_counterfactual_design(self, good_design):
        counterfactual = good_design.without_dropping()
        assert counterfactual.dropped == frozenset()
        assert counterfactual.plan is good_design.plan
        assert good_design.dropped == frozenset({"lo"})

    def test_without_dropping_identity_when_empty(self, plan, mapping):
        point = design(plan, mapping, dropped=())
        assert point.without_dropping() is point
