"""Unit tests for the expected-power model."""

import pytest

from repro.core.power import PowerModel
from repro.errors import AnalysisError
from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.mapping import Mapping
from repro.model.task import Task
from repro.model.taskgraph import TaskGraph


def single_task_apps(wcet=10.0, bcet=4.0, period=100.0, dt=1.0, ve=0.5):
    graph = TaskGraph(
        "g",
        tasks=[Task("t", bcet, wcet, detection_overhead=dt, voting_overhead=ve)],
        channels=[],
        period=period,
        reliability_target=1e-2,
    )
    return ApplicationSet([graph])


class TestExpectedExecution:
    def test_plain_task_uses_average(self, architecture):
        hardened = harden(single_task_apps(), HardeningPlan())
        model = PowerModel(architecture)
        expected = model.expected_execution_time(hardened, "t", "pe0")
        assert expected == pytest.approx(7.0)  # (4 + 10) / 2

    def test_worst_case_mode(self, architecture):
        hardened = harden(single_task_apps(), HardeningPlan())
        model = PowerModel(architecture, use_average_execution=False)
        assert model.expected_execution_time(hardened, "t", "pe0") == pytest.approx(10.0)

    def test_reexec_adds_detection_and_expected_retry(self, architecture):
        hardened = harden(
            single_task_apps(), HardeningPlan({"t": HardeningSpec.reexecution(1)})
        )
        model = PowerModel(architecture)
        expected = model.expected_execution_time(hardened, "t", "pe0")
        # single run = 7 + dt = 8; retries are nearly free at rate 1e-5
        assert expected == pytest.approx(8.0, rel=1e-3)
        assert expected > 8.0  # but strictly more than fault-free

    def test_voter_costs_ve(self, architecture):
        hardened = harden(
            single_task_apps(), HardeningPlan({"t": HardeningSpec.active(2)})
        )
        model = PowerModel(architecture)
        assert model.expected_execution_time(hardened, "t#vote", "pe0") == pytest.approx(0.5)

    def test_passive_copy_nearly_free(self, architecture):
        hardened = harden(
            single_task_apps(), HardeningPlan({"t": HardeningSpec.passive(3, active=2)})
        )
        model = PowerModel(architecture)
        passive_cost = model.expected_execution_time(hardened, "t#p0", "pe0")
        active_cost = model.expected_execution_time(hardened, "t#r1", "pe0")
        assert passive_cost < 0.01 * active_cost


class TestPassiveVsActivePower:
    def test_passive_replication_cheaper_on_average(self, architecture):
        apps = single_task_apps()
        model = PowerModel(architecture)
        active = harden(apps, HardeningPlan({"t": HardeningSpec.active(3)}))
        passive = harden(apps, HardeningPlan({"t": HardeningSpec.passive(3, active=2)}))
        mapping_active = Mapping(
            {"t": "pe0", "t#r1": "pe1", "t#r2": "pe2", "t#vote": "pe0"}
        )
        mapping_passive = Mapping(
            {"t": "pe0", "t#r1": "pe1", "t#p0": "pe2", "t#vote": "pe0"}
        )
        allocation = ("pe0", "pe1", "pe2")
        power_active = model.expected_power(active, mapping_active, allocation)
        power_passive = model.expected_power(passive, mapping_passive, allocation)
        assert power_passive < power_active


class TestPowerObjective:
    def test_static_plus_dynamic(self, architecture):
        hardened = harden(single_task_apps(), HardeningPlan())
        model = PowerModel(architecture)
        power = model.expected_power(hardened, Mapping({"t": "pe0"}), ("pe0",))
        # static 1.0 + dynamic 2.0 * (7/100)
        assert power == pytest.approx(1.0 + 2.0 * 0.07)

    def test_allocated_idle_processor_costs_static(self, architecture):
        hardened = harden(single_task_apps(), HardeningPlan())
        model = PowerModel(architecture)
        one = model.expected_power(hardened, Mapping({"t": "pe0"}), ("pe0",))
        two = model.expected_power(hardened, Mapping({"t": "pe0"}), ("pe0", "pe1"))
        assert two == pytest.approx(one + 1.0)

    def test_unallocated_use_rejected(self, architecture):
        hardened = harden(single_task_apps(), HardeningPlan())
        model = PowerModel(architecture)
        with pytest.raises(AnalysisError):
            model.expected_power(hardened, Mapping({"t": "pe0"}), ("pe1",))

    def test_utilizations(self, hardened, mapping, architecture):
        model = PowerModel(architecture)
        utilizations = model.utilizations(hardened, mapping)
        assert set(utilizations) <= {"pe0", "pe1", "pe2"}
        assert all(u >= 0 for u in utilizations.values())

    def test_worst_case_utilizations_dominate(self, hardened, mapping, architecture):
        model = PowerModel(architecture)
        average = model.utilizations(hardened, mapping)
        worst = model.worst_case_utilizations(hardened, mapping)
        for pe, load in average.items():
            assert worst[pe] >= load - 1e-9
