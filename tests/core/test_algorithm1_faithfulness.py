"""Line-level faithfulness checks of Algorithm 1.

A recording back-end captures the exact ``[bcet, wcet]`` bounds the
wrapper feeds into every schedulability run, so each branch of the
paper's pseudocode can be asserted directly:

* lines 2–6: passive copies are ``[0, 0]`` in the normal-state run;
* lines 13–17: tasks certainly finishing before ``minStart_v`` keep
  nominal bounds;
* lines 20–21: droppable tasks certainly starting after ``maxFinish_v``
  become ``[0, 0]``;
* lines 22–23: overlapping droppable tasks keep ``wcet`` (may run) with
  a permissive lower bound;
* line 26: surviving re-executable tasks get Eq. (1);
* the trigger itself gets its critical bounds.
"""

import pytest

from repro.core.analysis import MixedCriticalityAnalysis
from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import homogeneous_architecture
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sched.wcrt import WindowAnalysisBackend


class RecordingBackend:
    """Delegates to the real back-end but logs per-run job bounds."""

    def __init__(self):
        self._inner = WindowAnalysisBackend()
        self.runs = []

    def analyze(self, jobset):
        self.runs.append(
            {job.job_id: (job.bcet, job.wcet) for job in jobset.jobs if job.analyzed}
        )
        return self._inner.analyze(jobset)


@pytest.fixture
def staged_system():
    """Timing staged so each Algorithm-1 branch is exercised.

    * ``early`` (droppable, period 25): one early job per hyperperiod
      window that always finishes before the trigger can start, and later
      instances that certainly start after the trigger finished.
    * ``crit``: pre -> vul(re-exec k=1) -> post, with ``vul`` the trigger.
    * ``other``: a second re-executable task elsewhere.
    """
    crit = TaskGraph(
        "crit",
        tasks=[
            Task("pre", 10.0, 10.0),
            Task("vul", 5.0, 5.0, detection_overhead=1.0),
            Task("post", 4.0, 4.0, detection_overhead=1.0),
        ],
        channels=[Channel("pre", "vul", 0.0), Channel("vul", "post", 0.0)],
        period=100.0,
        reliability_target=1e-6,
    )
    early = TaskGraph(
        "early",
        tasks=[Task("eph", 2.0, 2.0)],
        channels=[],
        period=25.0,
        service_value=1.0,
    )
    apps = ApplicationSet([crit, early])
    plan = HardeningPlan(
        {
            "vul": HardeningSpec.reexecution(1),
            "post": HardeningSpec.reexecution(2),
        }
    )
    hardened = harden(apps, plan)
    arch = homogeneous_architecture(2)
    # eph shares pe0 with the critical chain (it outranks it: period 25).
    mapping = Mapping({"pre": "pe0", "vul": "pe0", "post": "pe0", "eph": "pe0"})
    return hardened, arch, mapping


def run_with_recorder(staged_system, dropped):
    hardened, arch, mapping = staged_system
    recorder = RecordingBackend()
    analysis = MixedCriticalityAnalysis(backend=recorder, granularity="job")
    result = analysis.analyze(hardened, arch, mapping, dropped=dropped)
    return recorder, result


class TestNormalRun:
    def test_first_run_uses_nominal_bounds(self, staged_system):
        recorder, _ = run_with_recorder(staged_system, dropped=("early",))
        normal = recorder.runs[0]
        # Re-executable tasks carry detection overhead, nothing more.
        assert normal[("vul", 0)] == (6.0, 6.0)
        assert normal[("post", 0)] == (5.0, 5.0)
        assert normal[("pre", 0)] == (10.0, 10.0)
        assert normal[("eph", 0)] == (2.0, 2.0)

    def test_run_count_is_one_plus_triggers(self, staged_system):
        recorder, result = run_with_recorder(staged_system, dropped=("early",))
        assert len(recorder.runs) == 1 + result.transitions_analyzed


class TestTransitionForVul:
    def vul_run(self, recorder, result):
        for run, transition in zip(recorder.runs[1:], result.transitions):
            if transition.trigger_primary == "vul":
                return run, transition
        raise AssertionError("no vul transition")

    def test_trigger_gets_eq1(self, staged_system):
        recorder, result = run_with_recorder(staged_system, dropped=("early",))
        run, _ = self.vul_run(recorder, result)
        # Eq. (1): (5 + 1) * (1 + 1) = 12.
        assert run[("vul", 0)] == (6.0, 12.0)

    def test_early_finisher_keeps_nominal(self, staged_system):
        # eph@0 runs in [0, 2]; vul cannot start before pre's bcet (10):
        # line 13 -> nominal bounds.
        recorder, result = run_with_recorder(staged_system, dropped=("early",))
        run, transition = self.vul_run(recorder, result)
        assert transition.min_start >= 10.0
        assert run[("eph", 0)] == (2.0, 2.0)

    def test_late_droppable_certainly_dropped(self, staged_system):
        # vul finishes by ~21 in the normal state; eph@2 (release 50) and
        # eph@3 (release 75) certainly start after -> [0, 0] (line 21).
        recorder, result = run_with_recorder(staged_system, dropped=("early",))
        run, transition = self.vul_run(recorder, result)
        assert transition.max_finish < 50.0
        assert run[("eph", 2)] == (0.0, 0.0)
        assert run[("eph", 3)] == (0.0, 0.0)

    def test_overlapping_droppable_keeps_wcet(self, staged_system):
        # eph@1 (release 25) may overlap the transition window.
        recorder, result = run_with_recorder(staged_system, dropped=("early",))
        run, transition = self.vul_run(recorder, result)
        if transition.max_finish > 25.0:
            assert run[("eph", 1)][1] == 2.0  # may still run (line 23)

    def test_surviving_reexecutable_gets_eq1(self, staged_system):
        # post overlaps vul's transition and is non-droppable
        # re-executable: line 26 -> (4 + 1) * (2 + 1) = 15.
        recorder, result = run_with_recorder(staged_system, dropped=("early",))
        run, _ = self.vul_run(recorder, result)
        assert run[("post", 0)] == (5.0, 15.0)

    def test_completed_predecessor_keeps_nominal(self, staged_system):
        # pre always finishes before vul starts (its only input):
        # maxFinish_pre <= minStart_vul would require strict inequality;
        # with interference the window check is conservative, so pre may
        # be classified critical — but being neither droppable nor
        # time-redundant its bounds stay nominal either way.
        recorder, result = run_with_recorder(staged_system, dropped=("early",))
        run, _ = self.vul_run(recorder, result)
        assert run[("pre", 0)] == (10.0, 10.0)


class TestKeepAliveVariant:
    def test_undropped_droppable_never_zeroed(self, staged_system):
        recorder, result = run_with_recorder(staged_system, dropped=())
        for run in recorder.runs[1:]:
            for instance in range(4):
                assert run[("eph", instance)][1] == 2.0
