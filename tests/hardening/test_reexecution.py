"""Unit tests for Eq. (1) timing arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HardeningError
from repro.hardening.reexecution import (
    critical_wcet,
    nominal_bounds,
    reexecution_wcet,
)
from repro.hardening.spec import HardeningSpec
from repro.model.task import Task


class TestEquationOne:
    def test_formula(self):
        # wcet' = (wcet + dt) * (k + 1)
        assert reexecution_wcet(10.0, 2.0, 0) == 12.0
        assert reexecution_wcet(10.0, 2.0, 1) == 24.0
        assert reexecution_wcet(10.0, 2.0, 3) == 48.0

    def test_negative_k_rejected(self):
        with pytest.raises(HardeningError):
            reexecution_wcet(10.0, 2.0, -1)

    @given(
        st.floats(min_value=0.1, max_value=1e3),
        st.floats(min_value=0.0, max_value=100.0),
        st.integers(min_value=0, max_value=10),
    )
    def test_monotone_in_k(self, wcet, dt, k):
        assert reexecution_wcet(wcet, dt, k + 1) > reexecution_wcet(wcet, dt, k)


class TestBounds:
    def test_nominal_includes_detection_for_reexec(self):
        task = Task("t", 1.0, 3.0, detection_overhead=0.5)
        assert nominal_bounds(task, HardeningSpec.reexecution(2)) == (1.5, 3.5)

    def test_nominal_unchanged_otherwise(self):
        task = Task("t", 1.0, 3.0, detection_overhead=0.5)
        assert nominal_bounds(task, HardeningSpec.none()) == (1.0, 3.0)
        assert nominal_bounds(task, HardeningSpec.active(3)) == (1.0, 3.0)

    def test_critical_wcet_reexec(self):
        task = Task("t", 1.0, 3.0, detection_overhead=0.5)
        assert critical_wcet(task, HardeningSpec.reexecution(2)) == pytest.approx(10.5)

    def test_critical_wcet_other_kinds_equal_nominal(self):
        task = Task("t", 1.0, 3.0, detection_overhead=0.5)
        assert critical_wcet(task, HardeningSpec.none()) == 3.0
        assert critical_wcet(task, HardeningSpec.passive(3, active=2)) == 3.0
