"""Unit tests for the hardening graph transformation T -> T'."""

import pytest

from repro.errors import HardeningError
from repro.hardening.spec import HardeningKind, HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.task import Channel, Task, TaskRole
from repro.model.taskgraph import TaskGraph


def pipeline(name="g", droppable=False):
    """u -> v -> w."""
    return TaskGraph(
        name,
        tasks=[
            Task("u", 1.0, 2.0, voting_overhead=0.3, detection_overhead=0.1),
            Task("v", 2.0, 4.0, voting_overhead=0.5, detection_overhead=0.2),
            Task("w", 1.0, 1.5, voting_overhead=0.2, detection_overhead=0.1),
        ],
        channels=[Channel("u", "v", 10.0), Channel("v", "w", 5.0)],
        period=20.0,
        reliability_target=None if droppable else 1e-6,
        service_value=1.0 if droppable else None,
    )


def apps_with(plan_dict):
    apps = ApplicationSet([pipeline()])
    return harden(apps, HardeningPlan(plan_dict))


class TestReexecution:
    def test_topology_unchanged(self):
        hs = apps_with({"v": HardeningSpec.reexecution(2)})
        graph = hs.applications.graph("g")
        assert graph.task_names == ("u", "v", "w")
        assert len(graph.channels) == 2

    def test_bookkeeping(self):
        hs = apps_with({"v": HardeningSpec.reexecution(2)})
        assert hs.reexec_counts == {"v": 2}
        assert hs.is_reexecutable("v")
        assert not hs.is_reexecutable("u")

    def test_nominal_bounds_include_detection(self):
        hs = apps_with({"v": HardeningSpec.reexecution(2)})
        assert hs.nominal_bounds("v") == (2.2, 4.2)
        assert hs.nominal_bounds("u") == (1.0, 2.0)

    def test_critical_wcet_is_eq1(self):
        hs = apps_with({"v": HardeningSpec.reexecution(2)})
        assert hs.critical_wcet("v") == pytest.approx((4.0 + 0.2) * 3)

    def test_trigger(self):
        hs = apps_with({"v": HardeningSpec.reexecution(1)})
        (trigger,) = hs.triggers()
        assert trigger.primary == "v"
        assert trigger.kind is HardeningKind.REEXECUTION
        assert trigger.start_anchors == ("v",)
        assert trigger.finish_anchor == "v"


class TestActiveReplication:
    def test_topology(self):
        hs = apps_with({"v": HardeningSpec.active(3)})
        graph = hs.applications.graph("g")
        names = set(graph.task_names)
        assert names == {"u", "v", "v#r1", "v#r2", "v#vote", "w"}
        # replicas receive u's output
        assert set(graph.successors("u")) == {"v", "v#r1", "v#r2"}
        # voter collects all copies and feeds w
        assert set(graph.predecessors("v#vote")) == {"v", "v#r1", "v#r2"}
        assert graph.successors("v#vote") == ["w"]
        # original v no longer feeds w directly
        assert graph.successors("v") == ["v#vote"]

    def test_voter_timing(self):
        hs = apps_with({"v": HardeningSpec.active(3)})
        voter = hs.applications.task("v#vote")
        assert voter.role is TaskRole.VOTER
        assert voter.bcet == voter.wcet == 0.5  # ve_v

    def test_replica_roles(self):
        hs = apps_with({"v": HardeningSpec.active(3)})
        replica = hs.applications.task("v#r1")
        assert replica.role is TaskRole.REPLICA
        assert replica.origin == "v"
        assert replica.wcet == 4.0

    def test_replica_group(self):
        hs = apps_with({"v": HardeningSpec.active(3)})
        assert hs.replica_groups["v"] == ("v", "v#r1", "v#r2")
        assert hs.voters["v"] == "v#vote"
        assert not hs.passive_tasks

    def test_active_does_not_trigger(self):
        hs = apps_with({"v": HardeningSpec.active(3)})
        assert hs.triggers() == []

    def test_channel_sizes_preserved(self):
        hs = apps_with({"v": HardeningSpec.active(3)})
        graph = hs.applications.graph("g")
        assert graph.channel("u", "v#r1").size == 10.0
        assert graph.channel("v#vote", "w").size == 5.0


class TestPassiveReplication:
    def test_topology(self):
        hs = apps_with({"v": HardeningSpec.passive(3, active=2)})
        graph = hs.applications.graph("g")
        assert set(graph.task_names) == {"u", "v", "v#r1", "v#p0", "v#vote", "w"}
        assert hs.passive_tasks == frozenset({"v#p0"})
        assert hs.is_passive("v#p0")
        assert not hs.is_passive("v#r1")

    def test_passive_gets_on_demand_inputs(self):
        hs = apps_with({"v": HardeningSpec.passive(3, active=2)})
        graph = hs.applications.graph("g")
        assert graph.channel("u", "v#p0").on_demand
        assert not graph.channel("u", "v#r1").on_demand

    def test_passive_trigger_edges_from_actives(self):
        hs = apps_with({"v": HardeningSpec.passive(3, active=2)})
        graph = hs.applications.graph("g")
        assert set(graph.predecessors("v#p0")) == {"u", "v", "v#r1"}
        assert graph.channel("v", "v#p0").on_demand
        assert graph.channel("v#r1", "v#p0").on_demand

    def test_passive_feeds_voter_on_demand(self):
        hs = apps_with({"v": HardeningSpec.passive(3, active=2)})
        graph = hs.applications.graph("g")
        assert graph.channel("v#p0", "v#vote").on_demand
        assert not graph.channel("v", "v#vote").on_demand

    def test_passive_trigger_anchors(self):
        hs = apps_with({"v": HardeningSpec.passive(3, active=2)})
        (trigger,) = hs.triggers()
        assert trigger.kind is HardeningKind.PASSIVE
        assert set(trigger.start_anchors) == {"v", "v#r1"}
        assert trigger.finish_anchor == "v#vote"


class TestAdjacentHardening:
    def test_chained_replicated_tasks(self):
        hs = apps_with(
            {
                "u": HardeningSpec.active(2),
                "v": HardeningSpec.active(2),
            }
        )
        graph = hs.applications.graph("g")
        # u's voter feeds both copies of v
        assert set(graph.successors("u#vote")) == {"v", "v#r1"}
        assert set(graph.predecessors("v#r1")) == {"u#vote"}

    def test_reexec_then_replication(self):
        hs = apps_with(
            {
                "u": HardeningSpec.reexecution(1),
                "v": HardeningSpec.passive(3, active=2),
            }
        )
        assert len(hs.triggers()) == 2
        kinds = {t.kind for t in hs.triggers()}
        assert kinds == {HardeningKind.REEXECUTION, HardeningKind.PASSIVE}


class TestErrors:
    def test_unknown_task_rejected(self):
        apps = ApplicationSet([pipeline()])
        with pytest.raises(HardeningError, match="unknown task"):
            harden(apps, HardeningPlan({"ghost": HardeningSpec.reexecution(1)}))

    def test_reserved_separator_rejected(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("bad#name", 1.0, 2.0)],
            channels=[],
            period=10.0,
            service_value=1.0,
        )
        with pytest.raises(HardeningError, match="reserved separator"):
            harden(ApplicationSet([graph]), HardeningPlan())

    def test_empty_plan_is_identity(self):
        apps = ApplicationSet([pipeline()])
        hs = harden(apps, HardeningPlan())
        assert hs.applications.graph("g").task_names == ("u", "v", "w")
        assert hs.trigger_count == 0

    def test_spec_of_derived_task(self):
        hs = apps_with({"v": HardeningSpec.passive(3, active=2)})
        assert hs.spec_of("v#p0").kind is HardeningKind.PASSIVE
        assert hs.spec_of("u").kind is HardeningKind.NONE
