"""Unit tests for hardening specs and plans."""

import pytest

from repro.errors import HardeningError
from repro.hardening.spec import HardeningKind, HardeningPlan, HardeningSpec


class TestSpecValidation:
    def test_none_spec(self):
        spec = HardeningSpec.none()
        assert spec.kind is HardeningKind.NONE
        assert not spec.is_replicated
        assert not spec.triggers_critical_state

    def test_none_rejects_parameters(self):
        with pytest.raises(HardeningError):
            HardeningSpec(kind=HardeningKind.NONE, reexecutions=1)
        with pytest.raises(HardeningError):
            HardeningSpec(kind=HardeningKind.NONE, replicas=2)

    def test_reexecution(self):
        spec = HardeningSpec.reexecution(2)
        assert spec.reexecutions == 2
        assert spec.triggers_critical_state
        assert not spec.is_replicated

    def test_reexecution_requires_positive_k(self):
        with pytest.raises(HardeningError):
            HardeningSpec.reexecution(0)

    def test_reexecution_rejects_replicas(self):
        with pytest.raises(HardeningError):
            HardeningSpec(kind=HardeningKind.REEXECUTION, reexecutions=1, replicas=3)

    def test_active(self):
        spec = HardeningSpec.active(3)
        assert spec.replicas == 3
        assert spec.effective_active_replicas == 3
        assert spec.passive_replicas == 0
        assert spec.is_replicated
        assert not spec.triggers_critical_state

    def test_active_duplication_allowed(self):
        assert HardeningSpec.active(2).replicas == 2

    def test_active_requires_two_copies(self):
        with pytest.raises(HardeningError):
            HardeningSpec.active(1)

    def test_passive(self):
        spec = HardeningSpec.passive(3, active=2)
        assert spec.effective_active_replicas == 2
        assert spec.passive_replicas == 1
        assert spec.triggers_critical_state

    def test_passive_default_active_count(self):
        spec = HardeningSpec(kind=HardeningKind.PASSIVE, replicas=4)
        assert spec.effective_active_replicas == 2
        assert spec.passive_replicas == 2

    def test_passive_requires_three_copies(self):
        with pytest.raises(HardeningError):
            HardeningSpec.passive(2, active=1)

    def test_passive_requires_two_active(self):
        with pytest.raises(HardeningError):
            HardeningSpec(kind=HardeningKind.PASSIVE, replicas=3, active_replicas=1)

    def test_passive_requires_one_passive(self):
        with pytest.raises(HardeningError):
            HardeningSpec(kind=HardeningKind.PASSIVE, replicas=3, active_replicas=3)

    def test_spec_roundtrip(self):
        for spec in (
            HardeningSpec.none(),
            HardeningSpec.reexecution(3),
            HardeningSpec.active(5),
            HardeningSpec.passive(4, active=2),
        ):
            assert HardeningSpec.from_dict(spec.to_dict()) == spec


class TestPlan:
    def test_default_is_none(self):
        plan = HardeningPlan()
        assert plan.spec_of("anything").kind is HardeningKind.NONE
        assert len(plan) == 0

    def test_none_specs_are_dropped(self):
        plan = HardeningPlan({"a": HardeningSpec.none()})
        assert "a" not in plan
        assert len(plan) == 0

    def test_with_spec(self):
        plan = HardeningPlan().with_spec("a", HardeningSpec.reexecution(1))
        assert plan.spec_of("a").reexecutions == 1
        removed = plan.with_spec("a", HardeningSpec.none())
        assert "a" not in removed

    def test_items_sorted(self):
        plan = HardeningPlan(
            {"z": HardeningSpec.reexecution(1), "a": HardeningSpec.active(2)}
        )
        assert [name for name, _ in plan.items()] == ["a", "z"]

    def test_histogram(self):
        plan = HardeningPlan(
            {
                "a": HardeningSpec.reexecution(1),
                "b": HardeningSpec.reexecution(2),
                "c": HardeningSpec.passive(3, active=2),
            }
        )
        histogram = plan.kind_histogram()
        assert histogram[HardeningKind.REEXECUTION] == 2
        assert histogram[HardeningKind.PASSIVE] == 1

    def test_plan_roundtrip(self):
        plan = HardeningPlan(
            {"a": HardeningSpec.reexecution(2), "b": HardeningSpec.active(3)}
        )
        assert HardeningPlan.from_dict(plan.to_dict()) == plan

    def test_equality(self):
        a = HardeningPlan({"t": HardeningSpec.reexecution(1)})
        b = HardeningPlan({"t": HardeningSpec.reexecution(1)})
        assert a == b
