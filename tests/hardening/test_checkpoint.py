"""Tests for the checkpointing hardening extension (cf. ref [2])."""

import pytest

from repro.core.analysis import MixedCriticalityAnalysis
from repro.errors import HardeningError
from repro.hardening.reexecution import (
    checkpoint_wcet,
    critical_wcet,
    nominal_bounds,
    recovery_bounds,
    reexecution_wcet,
)
from repro.hardening.spec import HardeningKind, HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import homogeneous_architecture
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.reliability.analysis import task_unsafe_probability
from repro.reliability.constraints import strengthen_spec
from repro.sim.engine import Simulator
from repro.sim.faults import FaultProfile, adhoc_profile
from repro.sim.sampler import WorstCaseSampler


class TestSpec:
    def test_constructor(self):
        spec = HardeningSpec.checkpointing(2, segments=4)
        assert spec.kind is HardeningKind.CHECKPOINT
        assert spec.reexecutions == 2
        assert spec.checkpoints == 4
        assert spec.triggers_critical_state
        assert spec.is_time_redundant

    def test_requires_two_segments(self):
        with pytest.raises(HardeningError):
            HardeningSpec.checkpointing(1, segments=1)

    def test_requires_recovery_budget(self):
        with pytest.raises(HardeningError):
            HardeningSpec.checkpointing(0, segments=2)

    def test_segments_exclusive_to_checkpoint(self):
        with pytest.raises(HardeningError):
            HardeningSpec(kind=HardeningKind.REEXECUTION, reexecutions=1, checkpoints=2)

    def test_roundtrip(self):
        spec = HardeningSpec.checkpointing(3, segments=2)
        assert HardeningSpec.from_dict(spec.to_dict()) == spec


class TestTiming:
    def test_formula(self):
        # wcet 10, dt 1, 2 segments, 1 recovery:
        # nominal = 10 + 2*1 = 12; recovery = 10/2 + 1 = 6 -> 18
        assert checkpoint_wcet(10.0, 1.0, 2, 1) == pytest.approx(18.0)

    def test_degenerates_to_eq1(self):
        for k in range(4):
            assert checkpoint_wcet(10.0, 1.0, 1, k) == pytest.approx(
                reexecution_wcet(10.0, 1.0, k)
            )

    def test_more_segments_cheaper_critical_time(self):
        # Checkpointing saves critical time vs full re-execution for the
        # same recovery budget (smaller rollback), at a nominal-time cost.
        task = Task("t", 5.0, 10.0, detection_overhead=0.5)
        reexec = critical_wcet(task, HardeningSpec.reexecution(2))
        checkpointed = critical_wcet(task, HardeningSpec.checkpointing(2, segments=4))
        assert checkpointed < reexec

    def test_nominal_bounds_pay_per_segment(self):
        task = Task("t", 5.0, 10.0, detection_overhead=0.5)
        spec = HardeningSpec.checkpointing(1, segments=4)
        assert nominal_bounds(task, spec) == (7.0, 12.0)

    def test_recovery_bounds(self):
        task = Task("t", 4.0, 8.0, detection_overhead=0.5)
        spec = HardeningSpec.checkpointing(1, segments=4)
        assert recovery_bounds(task, spec) == (1.5, 2.5)

    def test_recovery_bounds_rejects_replication(self):
        task = Task("t", 4.0, 8.0)
        with pytest.raises(HardeningError):
            recovery_bounds(task, HardeningSpec.active(3))


def checkpointed_system(segments=2, k=1):
    graph = TaskGraph(
        "g",
        tasks=[Task("a", 4.0, 4.0, detection_overhead=1.0), Task("b", 2.0, 2.0)],
        channels=[Channel("a", "b", 0.0)],
        period=40.0,
        reliability_target=1e-4,
    )
    apps = ApplicationSet([graph])
    plan = HardeningPlan({"a": HardeningSpec.checkpointing(k, segments=segments)})
    return harden(apps, plan)


class TestTransform:
    def test_topology_unchanged(self):
        hardened = checkpointed_system()
        assert hardened.applications.graph("g").task_names == ("a", "b")

    def test_bookkeeping(self):
        hardened = checkpointed_system(segments=4, k=2)
        assert hardened.is_time_redundant("a")
        assert not hardened.is_reexecutable("a")  # checkpoint, not re-exec
        assert hardened.time_redundancy["a"].checkpoints == 4
        (trigger,) = hardened.triggers()
        assert trigger.kind is HardeningKind.CHECKPOINT

    def test_inflation_ratio(self):
        hardened = checkpointed_system(segments=2, k=1)
        # nominal 4 + 2*1 = 6; critical 6 + (2 + 1) = 9 -> 1.5
        assert hardened.critical_inflation("a") == pytest.approx(1.5)


class TestSimulation:
    def test_fault_recovers_one_segment(self):
        hardened = checkpointed_system(segments=2, k=1)
        arch = homogeneous_architecture(1)
        sim = Simulator(hardened, arch, Mapping({"a": "pe0", "b": "pe0"}))
        clean = sim.run(sampler=WorstCaseSampler())
        # nominal: a = 4 + 2*1 = 6, b = 2 -> 8
        assert clean.graph_response_time("g") == pytest.approx(8.0)
        faulty = sim.run(
            profile=FaultProfile([("a", 0, 0)]), sampler=WorstCaseSampler()
        )
        # recovery adds one segment + dt = 3 -> 11
        assert faulty.graph_response_time("g") == pytest.approx(11.0)
        assert faulty.entered_critical_state

    def test_recovery_cheaper_than_reexecution(self):
        arch = homogeneous_architecture(1)
        flat = Mapping({"a": "pe0", "b": "pe0"})
        # A light detection overhead: four checkpoints cost 1.6 nominal
        # but shrink the rollback from 4.4 to 1.4.
        graph = TaskGraph(
            "g",
            tasks=[Task("a", 4.0, 4.0, detection_overhead=0.4), Task("b", 2.0, 2.0)],
            channels=[Channel("a", "b", 0.0)],
            period=40.0,
            reliability_target=1e-4,
        )
        apps = ApplicationSet([graph])
        profile = FaultProfile([("a", 0, 0)])
        reexec = harden(apps, HardeningPlan({"a": HardeningSpec.reexecution(1)}))
        checkpointed = harden(
            apps, HardeningPlan({"a": HardeningSpec.checkpointing(1, segments=4)})
        )
        r1 = Simulator(reexec, arch, flat).run(
            profile=profile, sampler=WorstCaseSampler()
        )
        r2 = Simulator(checkpointed, arch, flat).run(
            profile=profile, sampler=WorstCaseSampler()
        )
        assert r2.graph_response_time("g") < r1.graph_response_time("g")

    def test_adhoc_profile_covers_checkpointed_tasks(self):
        hardened = checkpointed_system(segments=2, k=2)
        profile = adhoc_profile(hardened)
        assert profile.is_faulty("a", 0, 0)
        assert profile.is_faulty("a", 0, 1)
        assert not profile.is_faulty("a", 0, 2)


class TestAnalysisSafety:
    def test_analysis_bounds_simulation(self):
        hardened = checkpointed_system(segments=2, k=2)
        arch = homogeneous_architecture(1)
        flat = Mapping({"a": "pe0", "b": "pe0"})
        analysis = MixedCriticalityAnalysis().analyze(hardened, arch, flat)
        sim = Simulator(hardened, arch, flat)
        worst = sim.run(
            profile=adhoc_profile(hardened), sampler=WorstCaseSampler()
        )
        assert analysis.wcrt_of("g") >= worst.graph_response_time("g") - 1e-9

    def test_checkpoint_tightens_wcrt(self):
        arch = homogeneous_architecture(1)
        flat = Mapping({"a": "pe0", "b": "pe0"})
        graph = TaskGraph(
            "g",
            tasks=[Task("a", 4.0, 4.0, detection_overhead=0.2), Task("b", 2.0, 2.0)],
            channels=[Channel("a", "b", 0.0)],
            period=40.0,
            reliability_target=1e-4,
        )
        apps = ApplicationSet([graph])
        reexec = harden(apps, HardeningPlan({"a": HardeningSpec.reexecution(2)}))
        checkpointed = harden(
            apps, HardeningPlan({"a": HardeningSpec.checkpointing(2, segments=4)})
        )
        analysis = MixedCriticalityAnalysis()
        r1 = analysis.analyze(reexec, arch, flat)
        r2 = analysis.analyze(checkpointed, arch, flat)
        assert r2.wcrt_of("g") < r1.wcrt_of("g")


class TestReliabilityAndRepair:
    def test_unsafe_probability_is_poisson_tail(self):
        from repro.model.architecture import Processor
        from repro.reliability.faults import poisson_fault_count

        task = Task("t", 1.0, 100.0, detection_overhead=5.0)
        spec = HardeningSpec.checkpointing(1, segments=2)
        pe = Processor("p", fault_rate=1e-3)
        duration = 100.0 + 2 * 5.0
        expected = 1.0 - sum(
            poisson_fault_count(1e-3, duration, i) for i in range(2)
        )
        assert task_unsafe_probability(task, spec, [pe]) == pytest.approx(expected)

    def test_more_recoveries_safer(self):
        from repro.model.architecture import Processor

        task = Task("t", 1.0, 100.0, detection_overhead=5.0)
        pe = Processor("p", fault_rate=1e-3)
        p1 = task_unsafe_probability(task, HardeningSpec.checkpointing(1), [pe])
        p2 = task_unsafe_probability(task, HardeningSpec.checkpointing(3), [pe])
        assert p2 < p1

    def test_strengthen_ladder_handles_checkpoint(self):
        spec = HardeningSpec.checkpointing(1, segments=2)
        stronger = strengthen_spec(spec)
        assert stronger.kind is HardeningKind.CHECKPOINT
        assert stronger.reexecutions == 2
        # and the ladder still terminates
        steps = 0
        while spec is not None:
            spec = strengthen_spec(spec)
            steps += 1
            assert steps < 50
