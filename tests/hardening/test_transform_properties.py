"""Property-based tests of the hardening transformation."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardening.spec import HardeningKind, HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.task import Channel, Task, TaskRole
from repro.model.taskgraph import TaskGraph


@st.composite
def systems_with_plans(draw):
    """A random chain application plus a random hardening plan."""
    length = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    channels = []
    for index in range(length):
        wcet = draw(st.floats(min_value=0.5, max_value=20.0))
        tasks.append(
            Task(
                f"t{index}",
                bcet=round(wcet * draw(st.floats(min_value=0.1, max_value=1.0)), 6),
                wcet=round(wcet, 6),
                detection_overhead=round(
                    draw(st.floats(min_value=0.0, max_value=2.0)), 6
                ),
                voting_overhead=round(
                    draw(st.floats(min_value=0.0, max_value=2.0)), 6
                ),
            )
        )
        if index:
            channels.append(Channel(f"t{index-1}", f"t{index}", 8.0))
    apps = ApplicationSet(
        [TaskGraph("g", tasks, channels, period=500.0, reliability_target=1e-6)]
    )

    specs = {}
    for task in tasks:
        choice = draw(st.integers(min_value=0, max_value=4))
        if choice == 1:
            specs[task.name] = HardeningSpec.reexecution(
                draw(st.integers(min_value=1, max_value=3))
            )
        elif choice == 2:
            specs[task.name] = HardeningSpec.active(
                draw(st.integers(min_value=2, max_value=4))
            )
        elif choice == 3:
            specs[task.name] = HardeningSpec.passive(
                3 + draw(st.integers(min_value=0, max_value=1)), active=2
            )
        elif choice == 4:
            specs[task.name] = HardeningSpec.checkpointing(
                draw(st.integers(min_value=1, max_value=3)),
                segments=draw(st.integers(min_value=2, max_value=4)),
            )
    return apps, HardeningPlan(specs)


@given(systems_with_plans())
@settings(max_examples=60, deadline=None)
def test_hardened_graph_is_acyclic_dag(system):
    apps, plan = system
    hardened = harden(apps, plan)
    nxg = hardened.applications.graph("g").to_networkx()
    assert nx.is_directed_acyclic_graph(nxg)


@given(systems_with_plans())
@settings(max_examples=60, deadline=None)
def test_replica_group_sizes_match_specs(system):
    apps, plan = system
    hardened = harden(apps, plan)
    for primary, spec in plan.items():
        if spec.is_replicated:
            group = hardened.replica_groups[primary]
            assert len(group) == spec.replicas
            passives = [n for n in group if hardened.is_passive(n)]
            assert len(passives) == spec.passive_replicas
            assert primary in group
            assert hardened.voters[primary] in hardened.applications.graph("g")
        else:
            assert primary not in hardened.replica_groups


@given(systems_with_plans())
@settings(max_examples=60, deadline=None)
def test_trigger_set_matches_plan(system):
    apps, plan = system
    hardened = harden(apps, plan)
    expected = {
        name for name, spec in plan.items() if spec.triggers_critical_state
    }
    assert {t.primary for t in hardened.triggers()} == expected


@given(systems_with_plans())
@settings(max_examples=60, deadline=None)
def test_critical_wcet_dominates_nominal(system):
    apps, plan = system
    hardened = harden(apps, plan)
    for task in hardened.applications.all_tasks:
        nominal_bcet, nominal_wcet = hardened.nominal_bounds(task.name)
        assert nominal_bcet <= nominal_wcet
        assert hardened.critical_wcet(task.name) >= nominal_wcet - 1e-9
        assert hardened.critical_inflation(task.name) >= 1.0 - 1e-12


@given(systems_with_plans())
@settings(max_examples=60, deadline=None)
def test_provenance_is_complete(system):
    apps, plan = system
    hardened = harden(apps, plan)
    for task in hardened.applications.all_tasks:
        primary = hardened.derived_to_primary[task.name]
        assert primary in apps.all_task_names
        if task.role is TaskRole.PRIMARY:
            assert primary == task.name


@given(systems_with_plans())
@settings(max_examples=60, deadline=None)
def test_external_interface_preserved(system):
    """Hardening must not change what the graph consumes and produces."""
    apps, plan = system
    hardened = harden(apps, plan)
    graph = hardened.applications.graph("g")
    source_graph = apps.graph("g")
    # Every original task still exists (re-exec/checkpoint keep it; for
    # replication the primary stays as copy 0).
    for name in source_graph.task_names:
        assert name in graph
