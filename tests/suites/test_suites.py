"""Unit tests for the benchmark suites."""

import pytest

from repro.errors import ModelError
from repro.reliability.constraints import check_reliability
from repro.suites import benchmark_names, get_benchmark
from repro.suites.cruise import (
    CRITICAL_APPS,
    cruise_benchmark,
    cruise_reference_plan,
    cruise_sample_mappings,
)
from repro.suites.dtbench import dt_large_benchmark, dt_med_benchmark
from repro.suites.synth import synth1_benchmark, synth2_benchmark


class TestRegistry:
    def test_all_names_build(self):
        for name in benchmark_names():
            benchmark = get_benchmark(name)
            assert benchmark.name == name
            assert len(benchmark.problem.applications) >= 2
            assert benchmark.description

    def test_unknown_name_rejected(self):
        with pytest.raises(ModelError):
            get_benchmark("nope")

    def test_expected_names(self):
        assert set(benchmark_names()) == {
            "cruise",
            "dt-med",
            "dt-large",
            "synth-1",
            "synth-2",
        }


class TestCruise:
    def test_structure(self):
        benchmark = cruise_benchmark()
        apps = benchmark.problem.applications
        assert benchmark.critical_apps == CRITICAL_APPS
        assert {g.name for g in apps.critical_graphs} == set(CRITICAL_APPS)
        assert len(apps.droppable_graphs) == 4
        assert len(benchmark.problem.architecture) == 5

    def test_reference_plan_covers_critical_tasks(self):
        plan = cruise_reference_plan()
        apps = cruise_benchmark().problem.applications
        critical_tasks = {
            t.name for g in apps.critical_graphs for t in g.tasks
        }
        assert {name for name, _ in plan.items()} == critical_tasks

    def test_sample_mappings_are_valid(self):
        benchmark = cruise_benchmark()
        hardened, mappings = cruise_sample_mappings()
        assert len(mappings) == 3
        for mapping in mappings:
            mapping.validate(
                hardened.applications, benchmark.problem.architecture
            )

    def test_sample_mappings_meet_reliability(self):
        benchmark = cruise_benchmark()
        hardened, mappings = cruise_sample_mappings()
        for mapping in mappings:
            assert (
                check_reliability(
                    hardened, mapping, benchmark.problem.architecture
                )
                == []
            )

    def test_replicas_on_distinct_processors(self):
        hardened, mappings = cruise_sample_mappings()
        for mapping in mappings:
            for group in hardened.replica_groups.values():
                processors = [mapping[name] for name in group]
                assert len(set(processors)) == len(processors)


class TestDtBenchmarks:
    def test_dt_med_has_figure5_drop_universe(self):
        apps = dt_med_benchmark().problem.applications
        assert {g.name for g in apps.droppable_graphs} == {"t1", "t2", "t3"}

    def test_dt_med_service_values_distinct_sums(self):
        apps = dt_med_benchmark().problem.applications
        values = [g.service_value for g in apps.droppable_graphs]
        sums = set()
        for mask in range(8):
            total = sum(v for i, v in enumerate(values) if mask & (1 << i))
            sums.add(total)
        # Most drop sets yield distinct service levels (collisions like
        # sv(t1) == sv(t2)+sv(t3) are fine — the paper's Figure 5 also
        # shows fewer Pareto points than drop subsets).
        assert len(sums) >= 6

    def test_dt_large_is_larger(self):
        med = dt_med_benchmark().problem
        large = dt_large_benchmark().problem
        assert len(large.applications.all_tasks) > len(med.applications.all_tasks)
        assert len(large.architecture) > len(med.architecture)

    def test_critical_apps_listed(self):
        assert dt_med_benchmark().critical_apps == ("dtm_c1", "dtm_c2")
        assert len(dt_large_benchmark().critical_apps) == 4


class TestSynthBenchmarks:
    def test_deterministic(self):
        a = synth1_benchmark().problem.applications
        b = synth1_benchmark().problem.applications
        assert a.graph_names == b.graph_names
        assert [g.period for g in a.graphs] == [g.period for g in b.graphs]

    def test_synth1_has_more_slack_than_synth2(self):
        s1 = synth1_benchmark().problem.applications
        s2 = synth2_benchmark().problem.applications
        slack1 = min(g.period / g.critical_path_wcet() for g in s1.graphs)
        slack2 = max(g.period / g.critical_path_wcet() for g in s2.graphs)
        assert slack1 > 4.0
        assert slack2 < 11.0

    def test_both_have_mixed_criticality(self):
        for builder in (synth1_benchmark, synth2_benchmark):
            apps = builder().problem.applications
            assert apps.critical_graphs
            assert apps.droppable_graphs
