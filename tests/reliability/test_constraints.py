"""Unit tests for reliability constraint checking and hardening sizing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.hardening.spec import HardeningKind, HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.mapping import Mapping
from repro.model.task import Task
from repro.model.taskgraph import TaskGraph
from repro.reliability.constraints import (
    MAX_REEXECUTIONS,
    check_reliability,
    minimal_reexecutions,
    minimal_replicas,
    strengthen_spec,
)


class TestCheckReliability:
    def make(self, plan):
        graph = TaskGraph(
            "g",
            tasks=[Task("a", 1.0, 100.0)],
            channels=[],
            period=100.0,
            reliability_target=1e-8,
        )
        return harden(ApplicationSet([graph]), plan)

    def test_violation_detected(self, architecture):
        hardened = self.make(HardeningPlan())
        mapping = Mapping({"a": "pe0"})
        violations = check_reliability(hardened, mapping, architecture)
        assert len(violations) == 1
        assert violations[0].graph == "g"
        assert violations[0].failure_rate > violations[0].target
        assert "exceeds target" in str(violations[0])

    def test_hardening_fixes_violation(self, architecture):
        hardened = self.make(HardeningPlan({"a": HardeningSpec.reexecution(3)}))
        mapping = Mapping({"a": "pe0"})
        assert check_reliability(hardened, mapping, architecture) == []


class TestMinimalReexecutions:
    def test_zero_fault_needs_nothing(self):
        assert minimal_reexecutions(0.0, 1e-9) == 0

    def test_already_satisfied(self):
        assert minimal_reexecutions(1e-10, 1e-9) == 0

    def test_known_case(self):
        # q = 1e-3, budget 1e-8: q^3 = 1e-9 <= 1e-8, q^2 = 1e-6 > 1e-8 -> k=2
        assert minimal_reexecutions(1e-3, 1e-8) == 2

    def test_impossible_budget(self):
        assert minimal_reexecutions(0.9, 1e-300) is None

    def test_certain_fault(self):
        assert minimal_reexecutions(1.0, 0.5) is None

    def test_nonpositive_budget(self):
        assert minimal_reexecutions(0.5, 0.0) is None

    def test_invalid_probability_rejected(self):
        with pytest.raises(AnalysisError):
            minimal_reexecutions(1.5, 1e-3)

    @given(
        st.floats(min_value=1e-6, max_value=0.5),
        st.floats(min_value=1e-12, max_value=1e-2),
    )
    def test_result_meets_budget(self, q, budget):
        k = minimal_reexecutions(q, budget)
        if k is not None:
            assert q ** (k + 1) <= budget
            assert k <= MAX_REEXECUTIONS
            if k > 0:
                assert q**k > budget  # minimality


class TestMinimalReplicas:
    def test_duplication_suffices(self):
        # q = 1e-3: 2 copies unsafe only if both faulty = q^2 = 1e-6 <= 1e-5
        assert minimal_replicas(1e-3, 1e-5) == 2

    def test_four_copies_needed(self):
        # budget below q^2 (1e-6) and 2-of-3 (~3e-6) but above 3-of-4 (~4e-9)
        assert minimal_replicas(1e-3, 5e-7) == 4

    def test_impossible(self):
        assert minimal_replicas(0.9, 1e-12) is None
        assert minimal_replicas(0.1, 0.0) is None


class TestStrengthenLadder:
    def test_starts_with_reexecution(self):
        spec = strengthen_spec(HardeningSpec.none())
        assert spec.kind is HardeningKind.REEXECUTION
        assert spec.reexecutions == 1

    def test_ladder_terminates(self):
        spec = HardeningSpec.none()
        steps = 0
        while spec is not None:
            spec = strengthen_spec(spec)
            steps += 1
            assert steps < 50, "ladder must terminate"
        assert steps > 3

    def test_every_rung_is_valid(self):
        spec = HardeningSpec.none()
        while True:
            next_spec = strengthen_spec(spec)
            if next_spec is None:
                break
            # Construction validates; also the ladder never repeats a rung.
            assert next_spec != spec
            spec = next_spec

    def test_reexecution_deepens(self):
        spec = strengthen_spec(HardeningSpec.reexecution(1))
        assert spec == HardeningSpec.reexecution(2)

    def test_reexecution_escalates_to_replication(self):
        spec = strengthen_spec(HardeningSpec.reexecution(2))
        assert spec.is_replicated
