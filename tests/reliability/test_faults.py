"""Unit tests for the transient-fault primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.reliability.faults import execution_fault_probability, poisson_fault_count


class TestExecutionFaultProbability:
    def test_zero_rate(self):
        assert execution_fault_probability(0.0, 100.0) == 0.0

    def test_zero_duration(self):
        assert execution_fault_probability(1e-3, 0.0) == 0.0

    def test_known_value(self):
        assert execution_fault_probability(1e-3, 100.0) == pytest.approx(
            1 - math.exp(-0.1)
        )

    def test_negative_rate_rejected(self):
        with pytest.raises(ModelError):
            execution_fault_probability(-1.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ModelError):
            execution_fault_probability(1.0, -1.0)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1e4),
    )
    def test_is_probability(self, rate, duration):
        p = execution_fault_probability(rate, duration)
        assert 0.0 <= p <= 1.0

    @given(st.floats(min_value=1e-9, max_value=1e-3))
    def test_monotone_in_duration(self, rate):
        assert execution_fault_probability(rate, 10.0) < execution_fault_probability(
            rate, 20.0
        )


class TestPoisson:
    def test_zero_faults_dominates_at_low_rate(self):
        assert poisson_fault_count(1e-6, 1.0, 0) == pytest.approx(1.0, abs=1e-5)

    def test_distribution_sums_to_one(self):
        total = sum(poisson_fault_count(0.5, 2.0, k) for k in range(60))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_negative_count_rejected(self):
        with pytest.raises(ModelError):
            poisson_fault_count(1.0, 1.0, -1)

    def test_matches_fault_probability(self):
        rate, duration = 2e-4, 50.0
        p_none = poisson_fault_count(rate, duration, 0)
        assert 1 - p_none == pytest.approx(
            execution_fault_probability(rate, duration)
        )
