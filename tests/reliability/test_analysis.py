"""Unit tests for the unsafe-probability analysis."""

import math

import pytest

from repro.errors import AnalysisError
from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import Processor
from repro.model.mapping import Mapping
from repro.model.task import Task
from repro.model.taskgraph import TaskGraph
from repro.reliability.analysis import (
    _majority_failure_probability,
    graph_failure_rate,
    graph_unsafe_probability,
    per_task_unsafe_budget,
    system_reliability_report,
    task_unsafe_probability,
)


def pe(rate, name="p", speed=1.0):
    return Processor(name=name, fault_rate=rate, speed=speed)


def q(rate, duration):
    return 1 - math.exp(-rate * duration)


class TestTaskUnsafeProbability:
    def test_unhardened(self):
        task = Task("t", 1.0, 100.0)
        expected = q(1e-4, 100.0)
        assert task_unsafe_probability(
            task, HardeningSpec.none(), [pe(1e-4)]
        ) == pytest.approx(expected)

    def test_reexecution_powers_down(self):
        task = Task("t", 1.0, 100.0, detection_overhead=10.0)
        base = q(1e-4, 110.0)
        result = task_unsafe_probability(
            task, HardeningSpec.reexecution(2), [pe(1e-4)]
        )
        assert result == pytest.approx(base**3)

    def test_speed_scales_exposure(self):
        task = Task("t", 1.0, 100.0)
        fast = task_unsafe_probability(
            task, HardeningSpec.none(), [pe(1e-4, speed=2.0)]
        )
        assert fast == pytest.approx(q(1e-4, 50.0))

    def test_triplication_majority(self):
        task = Task("t", 1.0, 100.0)
        prob = q(1e-4, 100.0)
        expected = 3 * prob**2 * (1 - prob) + prob**3
        result = task_unsafe_probability(
            task, HardeningSpec.active(3), [pe(1e-4, name=f"p{i}") for i in range(3)]
        )
        assert result == pytest.approx(expected)

    def test_duplication_needs_both_faulty(self):
        task = Task("t", 1.0, 100.0)
        prob = q(1e-4, 100.0)
        result = task_unsafe_probability(
            task, HardeningSpec.active(2), [pe(1e-4, name=f"p{i}") for i in range(2)]
        )
        assert result == pytest.approx(prob**2)

    def test_passive_counts_all_copies(self):
        task = Task("t", 1.0, 100.0)
        active = task_unsafe_probability(
            task, HardeningSpec.active(3), [pe(1e-4, name=f"p{i}") for i in range(3)]
        )
        passive = task_unsafe_probability(
            task,
            HardeningSpec.passive(3, active=2),
            [pe(1e-4, name=f"p{i}") for i in range(3)],
        )
        assert passive == pytest.approx(active)

    def test_wrong_processor_count_rejected(self):
        task = Task("t", 1.0, 100.0)
        with pytest.raises(AnalysisError):
            task_unsafe_probability(task, HardeningSpec.active(3), [pe(1e-4)])

    def test_hardening_helps(self):
        task = Task("t", 1.0, 100.0)
        plain = task_unsafe_probability(task, HardeningSpec.none(), [pe(1e-4)])
        hardened = task_unsafe_probability(
            task, HardeningSpec.reexecution(1), [pe(1e-4)]
        )
        assert hardened < plain


class TestMajorityFailure:
    def test_exhaustive_three_copies(self):
        probs = [0.1, 0.2, 0.3]
        # unsafe iff >= 2 faulty
        expected = (
            0.1 * 0.2 * 0.7
            + 0.1 * 0.8 * 0.3
            + 0.9 * 0.2 * 0.3
            + 0.1 * 0.2 * 0.3
        )
        assert _majority_failure_probability(probs) == pytest.approx(expected)

    def test_perfect_copies_never_fail(self):
        assert _majority_failure_probability([0.0, 0.0, 0.0]) == 0.0

    def test_all_faulty(self):
        assert _majority_failure_probability([1.0, 1.0, 1.0]) == pytest.approx(1.0)


class TestGraphLevel:
    @pytest.fixture
    def system(self):
        graph = TaskGraph(
            "g",
            tasks=[Task("a", 1.0, 50.0), Task("b", 1.0, 80.0)],
            channels=[],
            period=100.0,
            reliability_target=1e-2,
        )
        apps = ApplicationSet([graph])
        hardened = harden(apps, HardeningPlan({"a": HardeningSpec.reexecution(1)}))
        return hardened

    def test_graph_unsafe_probability(self, system, architecture):
        mapping = Mapping({"a": "pe0", "b": "pe1"})
        p_a = q(1e-5, 50.0) ** 2
        p_b = q(1e-5, 80.0)
        expected = 1 - (1 - p_a) * (1 - p_b)
        assert graph_unsafe_probability(
            system, "g", mapping, architecture
        ) == pytest.approx(expected)

    def test_failure_rate_divides_by_period(self, system, architecture):
        mapping = Mapping({"a": "pe0", "b": "pe1"})
        prob = graph_unsafe_probability(system, "g", mapping, architecture)
        assert graph_failure_rate(system, "g", mapping, architecture) == pytest.approx(
            prob / 100.0
        )

    def test_report(self, system, architecture):
        mapping = Mapping({"a": "pe0", "b": "pe1"})
        report = system_reliability_report(system, mapping, architecture)
        assert set(report) == {"g"}
        entry = report["g"]
        assert entry["satisfied"] == (entry["failure_rate"] <= entry["target"])

    def test_report_skips_droppable(self, hardened, mapping, architecture):
        report = system_reliability_report(hardened, mapping, architecture)
        assert "lo" not in report
        assert "hi" in report


class TestBudget:
    def test_equal_share(self):
        assert per_task_unsafe_budget(4, 1e-6, 100.0) == pytest.approx(2.5e-5)

    def test_rejects_empty_graph(self):
        with pytest.raises(AnalysisError):
            per_task_unsafe_budget(0, 1e-6, 100.0)
