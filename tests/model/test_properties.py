"""Property-based tests on the core model invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._timing import hyperperiod
from repro.model.serialization import task_graph_from_dict, task_graph_to_dict
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph

periods = st.lists(
    st.integers(min_value=1, max_value=200).map(float), min_size=1, max_size=5
)


@given(periods)
def test_hyperperiod_is_multiple_of_every_period(values):
    hp = hyperperiod(values)
    for period in values:
        ratio = hp / period
        assert abs(ratio - round(ratio)) < 1e-6
        assert hp >= period


@given(periods)
def test_hyperperiod_is_order_independent(values):
    assert hyperperiod(values) == hyperperiod(list(reversed(values)))


@st.composite
def chain_graphs(draw):
    """Random chain-shaped task graphs with valid timing."""
    length = draw(st.integers(min_value=1, max_value=6))
    tasks = []
    channels = []
    for index in range(length):
        wcet = draw(st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
        bcet_factor = draw(st.floats(min_value=0.0, max_value=1.0))
        tasks.append(
            Task(
                f"t{index}",
                bcet=round(wcet * bcet_factor, 6),
                wcet=round(wcet, 6),
                detection_overhead=round(
                    draw(st.floats(min_value=0.0, max_value=5.0)), 6
                ),
            )
        )
        if index:
            channels.append(Channel(f"t{index-1}", f"t{index}", 8.0))
    droppable = draw(st.booleans())
    period = draw(st.floats(min_value=1.0, max_value=1000.0))
    if droppable:
        return TaskGraph(
            "g",
            tasks,
            channels,
            period=period,
            service_value=draw(st.floats(min_value=0.0, max_value=100.0)),
        )
    return TaskGraph(
        "g",
        tasks,
        channels,
        period=period,
        reliability_target=draw(
            st.floats(min_value=1e-12, max_value=1.0, exclude_min=True)
        ),
    )


@given(chain_graphs())
@settings(max_examples=50)
def test_serialization_roundtrip(graph):
    assert task_graph_from_dict(task_graph_to_dict(graph)) == graph


@given(chain_graphs())
@settings(max_examples=50)
def test_critical_path_bounds(graph):
    cp = graph.critical_path_wcet()
    assert cp <= graph.total_wcet() + 1e-9
    assert cp >= max(t.wcet for t in graph.tasks) - 1e-9


@given(chain_graphs())
@settings(max_examples=50)
def test_droppability_is_consistent(graph):
    if graph.droppable:
        assert math.isfinite(graph.service_value)
        assert graph.reliability_target is None
    else:
        assert graph.service_value == math.inf
        assert 0 < graph.reliability_target <= 1
