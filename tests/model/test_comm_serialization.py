"""Round-trip of the comm/topology/ARQ interconnect fields.

The serialized form only carries non-default fields, so legacy flat
systems stay byte-identical; everything a backend can read must survive
``architecture_to_dict`` / ``architecture_from_dict`` exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.architecture import Architecture, Interconnect, Processor
from repro.model.serialization import (
    architecture_from_dict,
    architecture_to_dict,
)

interconnects = st.builds(
    Interconnect,
    bandwidth=st.floats(min_value=1.0, max_value=1e6),
    base_latency=st.floats(min_value=0.0, max_value=100.0),
    comm_backend=st.sampled_from(("flat", "shared-bus", "tdma", "noc-xy")),
    arq_retries=st.integers(min_value=0, max_value=8),
    arq_timeout=st.floats(min_value=0.0, max_value=50.0),
    mesh_columns=st.integers(min_value=0, max_value=8),
    hop_latency=st.floats(min_value=0.0, max_value=10.0),
    slot_length=st.floats(min_value=0.0, max_value=10.0),
    slot_count=st.integers(min_value=0, max_value=16),
)


def _architecture(fabric):
    return Architecture([Processor("pe0"), Processor("pe1")], fabric)


@settings(max_examples=100, deadline=None)
@given(interconnects)
def test_comm_fields_round_trip(fabric):
    restored = architecture_from_dict(
        architecture_to_dict(_architecture(fabric))
    )
    assert restored.interconnect == fabric


@settings(max_examples=50, deadline=None)
@given(interconnects)
def test_round_trip_is_a_fixed_point(fabric):
    once = architecture_to_dict(_architecture(fabric))
    twice = architecture_to_dict(architecture_from_dict(once))
    assert once == twice


def test_default_comm_fields_are_omitted():
    fabric = Interconnect(bandwidth=100.0, base_latency=1.0)
    payload = architecture_to_dict(_architecture(fabric))
    for key in (
        "comm_backend",
        "arq_retries",
        "arq_timeout",
        "mesh_columns",
        "hop_latency",
        "slot_length",
        "slot_count",
    ):
        assert key not in payload["interconnect"]


def test_non_default_comm_fields_are_emitted():
    fabric = Interconnect(
        bandwidth=100.0,
        base_latency=1.0,
        comm_backend="noc-xy",
        arq_retries=2,
        mesh_columns=3,
    )
    payload = architecture_to_dict(_architecture(fabric))
    fabric_data = payload["interconnect"]
    assert fabric_data["comm_backend"] == "noc-xy"
    assert fabric_data["arq_retries"] == 2
    assert fabric_data["mesh_columns"] == 3
    assert "slot_count" not in fabric_data
