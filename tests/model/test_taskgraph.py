"""Unit tests for task graphs."""

import math

import networkx as nx
import pytest

from repro.errors import ModelError
from repro.model.task import Channel, Task
from repro.model.taskgraph import Criticality, TaskGraph


def diamond_graph(**kwargs):
    """a -> {b, c} -> d."""
    defaults = dict(period=10.0, service_value=1.0)
    defaults.update(kwargs)
    return TaskGraph(
        "g",
        tasks=[
            Task("a", 1.0, 2.0),
            Task("b", 1.0, 3.0),
            Task("c", 2.0, 2.5),
            Task("d", 0.5, 1.0),
        ],
        channels=[
            Channel("a", "b", 1.0),
            Channel("a", "c", 1.0),
            Channel("b", "d", 1.0),
            Channel("c", "d", 1.0),
        ],
        **defaults,
    )


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            TaskGraph("", [Task("a", 1, 2)], [], period=10, service_value=1.0)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ModelError):
            TaskGraph("g", [Task("a", 1, 2)], [], period=0, service_value=1.0)

    def test_empty_task_set_rejected(self):
        with pytest.raises(ModelError):
            TaskGraph("g", [], [], period=10, service_value=1.0)

    def test_duplicate_task_rejected(self):
        with pytest.raises(ModelError):
            TaskGraph(
                "g",
                [Task("a", 1, 2), Task("a", 1, 2)],
                [],
                period=10,
                service_value=1.0,
            )

    def test_unknown_channel_endpoint_rejected(self):
        with pytest.raises(ModelError):
            TaskGraph(
                "g",
                [Task("a", 1, 2)],
                [Channel("a", "zz", 1.0)],
                period=10,
                service_value=1.0,
            )

    def test_duplicate_channel_rejected(self):
        with pytest.raises(ModelError):
            TaskGraph(
                "g",
                [Task("a", 1, 2), Task("b", 1, 2)],
                [Channel("a", "b", 1.0), Channel("a", "b", 2.0)],
                period=10,
                service_value=1.0,
            )

    def test_cycle_rejected(self):
        with pytest.raises(ModelError):
            TaskGraph(
                "g",
                [Task("a", 1, 2), Task("b", 1, 2)],
                [Channel("a", "b", 1.0), Channel("b", "a", 1.0)],
                period=10,
                service_value=1.0,
            )

    def test_deadline_defaults_to_period(self):
        graph = diamond_graph()
        assert graph.deadline == graph.period

    def test_explicit_deadline(self):
        graph = diamond_graph(deadline=7.5)
        assert graph.deadline == 7.5

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ModelError):
            diamond_graph(deadline=0.0)


class TestCriticality:
    def test_droppable_requires_service_value(self):
        with pytest.raises(ModelError):
            TaskGraph("g", [Task("a", 1, 2)], [], period=10)

    def test_droppable_rejects_infinite_service(self):
        with pytest.raises(ModelError):
            TaskGraph(
                "g", [Task("a", 1, 2)], [], period=10, service_value=math.inf
            )

    def test_droppable_rejects_negative_service(self):
        with pytest.raises(ModelError):
            TaskGraph(
                "g", [Task("a", 1, 2)], [], period=10, service_value=-1.0
            )

    def test_nondroppable_has_infinite_service(self):
        graph = TaskGraph(
            "g", [Task("a", 1, 2)], [], period=10, reliability_target=0.5
        )
        assert graph.service_value == math.inf
        assert not graph.droppable
        assert graph.criticality is Criticality.HIGH

    def test_nondroppable_rejects_finite_service(self):
        with pytest.raises(ModelError):
            TaskGraph(
                "g",
                [Task("a", 1, 2)],
                [],
                period=10,
                reliability_target=0.5,
                service_value=3.0,
            )

    def test_reliability_target_bounds(self):
        with pytest.raises(ModelError):
            TaskGraph("g", [Task("a", 1, 2)], [], period=10, reliability_target=0.0)
        with pytest.raises(ModelError):
            TaskGraph("g", [Task("a", 1, 2)], [], period=10, reliability_target=1.5)

    def test_droppable_graph_is_low_criticality(self):
        assert diamond_graph().criticality is Criticality.LOW


class TestStructure:
    def test_len_contains_iter(self):
        graph = diamond_graph()
        assert len(graph) == 4
        assert "a" in graph and "zz" not in graph
        assert [t.name for t in graph] == list(graph.task_names)

    def test_task_lookup(self):
        graph = diamond_graph()
        assert graph.task("b").wcet == 3.0
        with pytest.raises(ModelError):
            graph.task("zz")

    def test_channel_lookup(self):
        graph = diamond_graph()
        assert graph.channel("a", "b").size == 1.0
        with pytest.raises(ModelError):
            graph.channel("b", "a")

    def test_predecessors_successors(self):
        graph = diamond_graph()
        assert graph.predecessors("d") == ["b", "c"]
        assert graph.successors("a") == ["b", "c"]
        assert graph.predecessors("a") == []

    def test_in_out_channels(self):
        graph = diamond_graph()
        assert {c.src for c in graph.in_channels("d")} == {"b", "c"}
        assert {c.dst for c in graph.out_channels("a")} == {"b", "c"}

    def test_sources_sinks(self):
        graph = diamond_graph()
        assert graph.sources == ["a"]
        assert graph.sinks == ["d"]

    def test_topological_order_is_consistent(self):
        graph = diamond_graph()
        order = graph.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for channel in graph.channels:
            assert position[channel.src] < position[channel.dst]

    def test_depth(self):
        graph = diamond_graph()
        assert graph.depth("a") == 0
        assert graph.depth("b") == 1
        assert graph.depth("d") == 2

    def test_to_networkx(self):
        nxg = diamond_graph().to_networkx()
        assert isinstance(nxg, nx.DiGraph)
        assert set(nxg.nodes) == {"a", "b", "c", "d"}
        assert nxg.nodes["a"]["task"].wcet == 2.0
        assert nxg.edges["a", "b"]["channel"].size == 1.0


class TestAggregates:
    def test_total_wcet(self):
        assert diamond_graph().total_wcet() == pytest.approx(8.5)

    def test_critical_path(self):
        # a(2) -> b(3) -> d(1) = 6 beats a -> c(2.5) -> d = 5.5
        assert diamond_graph().critical_path_wcet() == pytest.approx(6.0)

    def test_critical_path_at_most_total(self):
        graph = diamond_graph()
        assert graph.critical_path_wcet() <= graph.total_wcet()

    def test_utilization(self):
        assert diamond_graph().utilization() == pytest.approx(0.85)


class TestDerive:
    def test_derive_preserves_attributes(self):
        graph = diamond_graph()
        derived = graph.derive(tasks=[Task("only", 1.0, 2.0)], channels=[])
        assert derived.period == graph.period
        assert derived.service_value == graph.service_value
        assert len(derived) == 1

    def test_derive_keeps_reliability_target(self):
        graph = TaskGraph(
            "g", [Task("a", 1, 2)], [], period=10, reliability_target=0.25
        )
        derived = graph.derive(tasks=[Task("b", 1, 2)], channels=[])
        assert derived.reliability_target == 0.25

    def test_equality(self):
        assert diamond_graph() == diamond_graph()
        assert diamond_graph() != diamond_graph(period=20.0)
