"""Unit tests for the architecture model."""

import pytest

from repro.errors import ModelError
from repro.model.architecture import (
    Architecture,
    Interconnect,
    InterconnectKind,
    Processor,
    homogeneous_architecture,
)


class TestProcessor:
    def test_defaults(self):
        p = Processor("pe0")
        assert p.ptype == "generic"
        assert p.speed == 1.0

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Processor("")

    def test_negative_power_rejected(self):
        with pytest.raises(ModelError):
            Processor("p", static_power=-1.0)
        with pytest.raises(ModelError):
            Processor("p", dynamic_power=-1.0)

    def test_negative_fault_rate_rejected(self):
        with pytest.raises(ModelError):
            Processor("p", fault_rate=-1e-9)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ModelError):
            Processor("p", speed=0.0)

    def test_scale_time(self):
        assert Processor("p", speed=2.0).scale_time(10.0) == 5.0
        assert Processor("p").scale_time(10.0) == 10.0


class TestInterconnect:
    def test_transfer_time(self):
        fabric = Interconnect(bandwidth=100.0, base_latency=1.0)
        assert fabric.transfer_time(200.0) == pytest.approx(3.0)

    def test_zero_size_is_free(self):
        fabric = Interconnect(bandwidth=100.0, base_latency=1.0)
        assert fabric.transfer_time(0.0) == 0.0

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ModelError):
            Interconnect(bandwidth=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ModelError):
            Interconnect(bandwidth=1.0, base_latency=-0.5)

    def test_kind(self):
        fabric = Interconnect(bandwidth=1.0, kind=InterconnectKind.NOC)
        assert fabric.kind is InterconnectKind.NOC


class TestArchitecture:
    def test_lookup(self, architecture):
        assert architecture.processor("pe0").name == "pe0"
        with pytest.raises(ModelError):
            architecture.processor("nope")

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Architecture([], Interconnect(bandwidth=1.0))

    def test_duplicate_rejected(self):
        with pytest.raises(ModelError):
            Architecture(
                [Processor("p"), Processor("p")], Interconnect(bandwidth=1.0)
            )

    def test_iteration_and_membership(self, architecture):
        assert len(architecture) == 3
        assert "pe1" in architecture
        assert [p.name for p in architecture] == ["pe0", "pe1", "pe2"]

    def test_processors_of_type(self):
        arch = Architecture(
            [Processor("a", ptype="fast"), Processor("b", ptype="slow")],
            Interconnect(bandwidth=1.0),
        )
        assert [p.name for p in arch.processors_of_type("fast")] == ["a"]
        assert arch.processors_of_type("nope") == ()

    def test_max_static_power(self, architecture):
        assert architecture.max_static_power() == pytest.approx(3.0)


class TestHomogeneousBuilder:
    def test_builds_requested_count(self):
        arch = homogeneous_architecture(4, static_power=0.5)
        assert len(arch) == 4
        assert all(p.static_power == 0.5 for p in arch)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ModelError):
            homogeneous_architecture(0)

    def test_name_prefix(self):
        arch = homogeneous_architecture(2, name_prefix="core")
        assert arch.processor_names == ("core0", "core1")
