"""Unit tests for tasks and channels."""

import pytest

from repro.errors import ModelError
from repro.model.task import Channel, Task, TaskRole


class TestTaskValidation:
    def test_basic_construction(self):
        task = Task("t", 1.0, 2.0, voting_overhead=0.3, detection_overhead=0.1)
        assert task.name == "t"
        assert task.bcet == 1.0
        assert task.wcet == 2.0
        assert task.voting_overhead == 0.3
        assert task.detection_overhead == 0.1
        assert task.role is TaskRole.PRIMARY

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Task("", 1.0, 2.0)

    def test_negative_bcet_rejected(self):
        with pytest.raises(ModelError):
            Task("t", -0.1, 2.0)

    def test_wcet_below_bcet_rejected(self):
        with pytest.raises(ModelError):
            Task("t", 2.0, 1.0)

    def test_equal_bcet_wcet_allowed(self):
        task = Task("t", 2.0, 2.0)
        assert task.bcet == task.wcet

    def test_zero_times_allowed(self):
        task = Task("t", 0.0, 0.0)
        assert task.wcet == 0.0

    def test_negative_voting_overhead_rejected(self):
        with pytest.raises(ModelError):
            Task("t", 1.0, 2.0, voting_overhead=-1.0)

    def test_negative_detection_overhead_rejected(self):
        with pytest.raises(ModelError):
            Task("t", 1.0, 2.0, detection_overhead=-1.0)

    def test_primary_must_not_set_origin(self):
        with pytest.raises(ModelError):
            Task("t", 1.0, 2.0, origin="other")

    def test_replica_requires_origin(self):
        with pytest.raises(ModelError):
            Task("t", 1.0, 2.0, role=TaskRole.REPLICA)

    def test_voter_requires_origin(self):
        with pytest.raises(ModelError):
            Task("t", 1.0, 2.0, role=TaskRole.VOTER)

    def test_replica_with_origin(self):
        replica = Task("t#r1", 1.0, 2.0, role=TaskRole.REPLICA, origin="t", replica_index=1)
        assert replica.primary_name == "t"
        assert replica.replica_index == 1


class TestTaskDerivation:
    def test_primary_name_of_primary(self):
        assert Task("t", 1.0, 2.0).primary_name == "t"

    def test_with_times(self):
        task = Task("t", 1.0, 2.0)
        updated = task.with_times(0.5, 3.0)
        assert (updated.bcet, updated.wcet) == (0.5, 3.0)
        assert task.bcet == 1.0  # original untouched

    def test_with_times_validates(self):
        with pytest.raises(ModelError):
            Task("t", 1.0, 2.0).with_times(3.0, 2.0)

    def test_renamed(self):
        assert Task("t", 1.0, 2.0).renamed("u").name == "u"

    def test_tasks_are_hashable_value_objects(self):
        assert Task("t", 1.0, 2.0) == Task("t", 1.0, 2.0)
        assert hash(Task("t", 1.0, 2.0)) == hash(Task("t", 1.0, 2.0))
        assert Task("t", 1.0, 2.0) != Task("t", 1.0, 2.5)


class TestChannel:
    def test_basic(self):
        channel = Channel("a", "b", 16.0)
        assert channel.key == ("a", "b")
        assert not channel.on_demand

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            Channel("a", "a", 1.0)

    def test_empty_endpoint_rejected(self):
        with pytest.raises(ModelError):
            Channel("", "b")
        with pytest.raises(ModelError):
            Channel("a", "")

    def test_negative_size_rejected(self):
        with pytest.raises(ModelError):
            Channel("a", "b", -1.0)

    def test_zero_size_allowed(self):
        assert Channel("a", "b", 0.0).size == 0.0

    def test_on_demand_flag(self):
        assert Channel("a", "b", 1.0, on_demand=True).on_demand
