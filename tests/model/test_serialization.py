"""Round-trip tests for model serialization."""

import pytest

from repro.errors import ModelError
from repro.model.serialization import (
    application_set_from_dict,
    application_set_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    load_system,
    mapping_from_dict,
    mapping_to_dict,
    save_system,
    task_from_dict,
    task_graph_from_dict,
    task_graph_to_dict,
    task_to_dict,
)
from repro.model.task import Task, TaskRole


class TestTaskRoundTrip:
    def test_primary(self):
        task = Task("t", 1.0, 2.0, voting_overhead=0.3, detection_overhead=0.1)
        assert task_from_dict(task_to_dict(task)) == task

    def test_replica_keeps_provenance(self):
        replica = Task(
            "t#r1", 1.0, 2.0, role=TaskRole.REPLICA, origin="t", replica_index=1
        )
        restored = task_from_dict(task_to_dict(replica))
        assert restored == replica
        assert restored.role is TaskRole.REPLICA


class TestGraphRoundTrip:
    def test_droppable(self, droppable_graph):
        restored = task_graph_from_dict(task_graph_to_dict(droppable_graph))
        assert restored == droppable_graph

    def test_critical(self, critical_graph):
        restored = task_graph_from_dict(task_graph_to_dict(critical_graph))
        assert restored == critical_graph
        assert restored.reliability_target == critical_graph.reliability_target


class TestSetRoundTrips:
    def test_application_set(self, apps):
        restored = application_set_from_dict(application_set_to_dict(apps))
        assert restored.graph_names == apps.graph_names
        assert restored.graph("hi") == apps.graph("hi")

    def test_architecture(self, architecture):
        restored = architecture_from_dict(architecture_to_dict(architecture))
        assert restored.processor_names == architecture.processor_names
        assert restored.interconnect == architecture.interconnect

    def test_mapping(self, mapping):
        assert mapping_from_dict(mapping_to_dict(mapping)) == mapping

    def test_version_check(self, apps):
        data = application_set_to_dict(apps)
        data["format_version"] = 99
        with pytest.raises(ModelError, match="format version"):
            application_set_from_dict(data)


class TestSystemFile:
    def test_save_and_load(self, tmp_path, apps, architecture, mapping):
        path = tmp_path / "system.json"
        save_system(path, apps, architecture, mapping=mapping)
        bundle = load_system(path)
        assert bundle.applications.graph_names == apps.graph_names
        assert bundle.architecture.processor_names == architecture.processor_names
        assert bundle.mapping == mapping
        assert bundle.plan is None

    def test_save_without_mapping(self, tmp_path, apps, architecture):
        path = tmp_path / "system.json"
        save_system(path, apps, architecture)
        bundle = load_system(path)
        assert bundle.mapping is None

    def test_save_with_plan(self, tmp_path, apps, architecture, plan):
        path = tmp_path / "system.json"
        save_system(path, apps, architecture, plan=plan)
        bundle = load_system(path)
        assert bundle.plan == plan
