"""Unit tests for application sets."""

import pytest

from repro.errors import ModelError
from repro.model.application import ApplicationSet
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph


def graph(name, tasks, period=10.0, droppable=True, service=1.0):
    return TaskGraph(
        name,
        tasks=[Task(t, 1.0, 2.0) for t in tasks],
        channels=[],
        period=period,
        reliability_target=None if droppable else 1e-6,
        service_value=service if droppable else None,
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            ApplicationSet([])

    def test_duplicate_graph_rejected(self):
        with pytest.raises(ModelError):
            ApplicationSet([graph("g", ["a"]), graph("g", ["b"])])

    def test_duplicate_task_across_graphs_rejected(self):
        with pytest.raises(ModelError):
            ApplicationSet([graph("g1", ["a"]), graph("g2", ["a"])])

    def test_insertion_order_preserved(self):
        apps = ApplicationSet([graph("z", ["a"]), graph("m", ["b"])])
        assert apps.graph_names == ("z", "m")


class TestAccess:
    def test_lookup(self, apps):
        assert apps.graph("hi").name == "hi"
        with pytest.raises(ModelError):
            apps.graph("nope")

    def test_owner_of(self, apps):
        assert apps.owner_of("a").name == "hi"
        assert apps.owner_of("x").name == "lo"
        with pytest.raises(ModelError):
            apps.owner_of("nope")

    def test_task_lookup(self, apps):
        assert apps.task("b").wcet == 4.0

    def test_all_tasks(self, apps):
        assert set(apps.all_task_names) == {"a", "b", "c", "x", "y"}

    def test_contains_len_iter(self, apps):
        assert "hi" in apps and "nope" not in apps
        assert len(apps) == 2
        assert [g.name for g in apps] == ["hi", "lo"]


class TestCriticalityPartition:
    def test_partition(self, apps):
        assert [g.name for g in apps.critical_graphs] == ["hi"]
        assert [g.name for g in apps.droppable_graphs] == ["lo"]

    def test_service_of(self, apps):
        assert apps.max_service == 5.0
        assert apps.service_of(["lo"]) == 0.0
        assert apps.service_of(()) == 5.0

    def test_service_rejects_nondroppable(self, apps):
        with pytest.raises(ModelError):
            apps.service_of(["hi"])

    def test_validate_drop_set_rejects_unknown(self, apps):
        with pytest.raises(ModelError):
            apps.validate_drop_set(["ghost"])

    def test_validate_drop_set_returns_frozenset(self, apps):
        result = apps.validate_drop_set(["lo"])
        assert result == frozenset({"lo"})


class TestTiming:
    def test_hyperperiod(self, apps):
        assert apps.hyperperiod == 20.0

    def test_hyperperiod_nonharmonic(self):
        apps = ApplicationSet([graph("g1", ["a"], period=6.0), graph("g2", ["b"], period=10.0)])
        assert apps.hyperperiod == 30.0

    def test_total_utilization(self, apps):
        expected = 7.5 / 20.0 + 5.0 / 10.0
        assert apps.total_utilization() == pytest.approx(expected)


class TestReplacing:
    def test_replacing_swaps_graph(self, apps):
        replacement = graph("lo", ["x2", "y2"], period=10.0)
        updated = apps.replacing(replacement)
        assert set(updated.graph("lo").task_names) == {"x2", "y2"}
        # original untouched
        assert set(apps.graph("lo").task_names) == {"x", "y"}

    def test_replacing_unknown_rejected(self, apps):
        with pytest.raises(ModelError):
            apps.replacing(graph("ghost", ["q"]))

    def test_replacing_preserves_order(self, apps):
        updated = apps.replacing(graph("hi", ["a2"], droppable=False))
        assert updated.graph_names == apps.graph_names
