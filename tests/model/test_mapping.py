"""Unit tests for task-to-processor mappings."""

import pytest

from repro.errors import MappingError
from repro.model.mapping import Mapping


@pytest.fixture
def simple_mapping():
    return Mapping({"a": "pe0", "b": "pe0", "c": "pe1", "x": "pe2", "y": "pe2"})


class TestAccess:
    def test_getitem(self, simple_mapping):
        assert simple_mapping["a"] == "pe0"

    def test_missing_raises(self, simple_mapping):
        with pytest.raises(MappingError):
            simple_mapping["nope"]

    def test_get_default(self, simple_mapping):
        assert simple_mapping.get("nope") is None
        assert simple_mapping.get("nope", "pe9") == "pe9"

    def test_contains_len_iter(self, simple_mapping):
        assert "a" in simple_mapping
        assert len(simple_mapping) == 5
        assert set(simple_mapping) == {"a", "b", "c", "x", "y"}

    def test_as_dict_is_copy(self, simple_mapping):
        d = simple_mapping.as_dict()
        d["a"] = "pe9"
        assert simple_mapping["a"] == "pe0"

    def test_empty_names_rejected(self):
        with pytest.raises(MappingError):
            Mapping({"": "pe0"})
        with pytest.raises(MappingError):
            Mapping({"a": ""})


class TestQueries:
    def test_tasks_on(self, simple_mapping):
        assert simple_mapping.tasks_on("pe0") == ["a", "b"]
        assert simple_mapping.tasks_on("pe9") == []

    def test_used_processors(self, simple_mapping):
        assert simple_mapping.used_processors == {"pe0", "pe1", "pe2"}

    def test_co_located(self, simple_mapping):
        assert simple_mapping.co_located("a", "b")
        assert not simple_mapping.co_located("a", "c")


class TestDerivation:
    def test_with_assignment(self, simple_mapping):
        updated = simple_mapping.with_assignment("a", "pe1")
        assert updated["a"] == "pe1"
        assert simple_mapping["a"] == "pe0"

    def test_restricted_to(self, simple_mapping):
        small = simple_mapping.restricted_to(["a", "c"])
        assert set(small) == {"a", "c"}

    def test_equality_and_hash(self, simple_mapping):
        clone = Mapping(simple_mapping.as_dict())
        assert clone == simple_mapping
        assert hash(clone) == hash(simple_mapping)
        assert simple_mapping != simple_mapping.with_assignment("a", "pe1")


class TestValidation:
    def test_valid(self, apps, architecture, simple_mapping):
        simple_mapping.validate(apps, architecture)

    def test_unmapped_task(self, apps, architecture):
        with pytest.raises(MappingError, match="unmapped"):
            Mapping({"a": "pe0"}).validate(apps, architecture)

    def test_unknown_processor(self, apps, architecture, simple_mapping):
        bad = simple_mapping.with_assignment("a", "pe99")
        with pytest.raises(MappingError, match="unknown processor"):
            bad.validate(apps, architecture)

    def test_unallocated_processor(self, apps, architecture, simple_mapping):
        with pytest.raises(MappingError, match="unallocated"):
            simple_mapping.validate(apps, architecture, allocated=["pe0", "pe1"])

    def test_unknown_allocated_name(self, apps, architecture, simple_mapping):
        with pytest.raises(MappingError, match="unknown allocated"):
            simple_mapping.validate(apps, architecture, allocated=["pe0", "zz"])

    def test_extra_mapped_tasks_allowed(self, apps, architecture, simple_mapping):
        extended = simple_mapping.with_assignment("extra_task", "pe0")
        extended.validate(apps, architecture)
