"""Span exporters: JSONL, Chrome trace-event JSON, summaries."""

import json
import threading

import pytest

from repro.errors import ReproError
from repro.obs.export import (
    JsonlSpanExporter,
    child_coverage,
    format_summary,
    read_spans,
    spans_to_chrome,
    summarize,
    write_chrome_trace,
)
from repro.obs.trace import span, tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    tracer().reset()
    yield
    tracer().reset()


def _record(name, span_id, parent_id, start_us, duration_us, **attrs):
    return {
        "span": name,
        "trace_id": "t" * 32,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_us": start_us,
        "duration_us": duration_us,
        "thread": "main",
        "attrs": attrs,
    }


class TestJsonlRoundtrip:
    def test_export_then_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = JsonlSpanExporter(path)
        tracer().enable(exporter)
        with span("outer"):
            with span("inner", hits=2):
                pass
        exporter.close()
        spans = read_spans(path)
        assert [r["span"] for r in spans] == ["inner", "outer"]
        assert spans[0]["attrs"] == {"hits": 2}

    def test_event_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"event": "GenerationCompleted", "generation": 1})
            + "\n"
            + json.dumps(_record("s", "a" * 16, None, 0, 10))
            + "\n\n"
        )
        spans = read_spans(path)
        assert len(spans) == 1
        assert spans[0]["span"] == "s"

    def test_bad_json_raises_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"span": "ok"}\nnot-json\n')
        with pytest.raises(ReproError, match=r":2"):
            read_spans(path)

    def test_concurrent_exports_stay_line_separated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = JsonlSpanExporter(path)
        tracer().enable(exporter)

        def hammer(i):
            for j in range(50):
                with span("w", worker=i, iteration=j):
                    pass

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        exporter.close()
        spans = read_spans(path)
        assert len(spans) == 8 * 50


class TestChromeExport:
    def test_schema(self):
        spans = [
            _record("api.analyze", "a" * 16, None, 0, 1000, cache_hit=True),
            _record("sched.holistic.fixed_point", "b" * 16, "a" * 16, 10, 500),
        ]
        payload = spans_to_chrome(spans)
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1 and meta[0]["args"]["name"] == "main"
        assert len(slices) == 2
        analyze = next(e for e in slices if e["name"] == "api.analyze")
        assert analyze["cat"] == "api"
        assert analyze["dur"] == 1000
        assert analyze["args"]["cache_hit"] is True
        assert all(e["pid"] == 1 for e in slices)

    def test_zero_duration_clamped_to_one(self):
        payload = spans_to_chrome([_record("s", "a" * 16, None, 0, 0)])
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert slices[0]["dur"] == 1

    def test_write_is_loadable_json(self, tmp_path):
        out = tmp_path / "chrome.json"
        write_chrome_trace([_record("s", "a" * 16, None, 0, 5)], out)
        loaded = json.loads(out.read_text())
        assert isinstance(loaded["traceEvents"], list)

    def test_threads_get_distinct_tids(self):
        a = _record("s", "a" * 16, None, 0, 5)
        b = dict(_record("s", "b" * 16, None, 0, 5), thread="worker-1")
        payload = spans_to_chrome([a, b])
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len({e["tid"] for e in slices}) == 2


class TestSummaries:
    def _tree(self):
        # root (100) -> mid (60) -> leaf (40); serial, fully nested.
        return [
            _record("root", "r" * 16, None, 0, 100),
            _record("mid", "m" * 16, "r" * 16, 10, 60),
            _record("leaf", "l" * 16, "m" * 16, 20, 40),
        ]

    def test_self_time_decomposes_root_exactly(self):
        summary = summarize(self._tree())
        self_by_name = {row[0]: row[3] for row in summary.phases}
        assert self_by_name == {"root": 40, "mid": 20, "leaf": 40}
        assert sum(self_by_name.values()) == summary.total_us

    def test_phases_sorted_by_self_time(self):
        summary = summarize(self._tree())
        selves = [row[3] for row in summary.phases]
        assert selves == sorted(selves, reverse=True)

    def test_critical_path_follows_largest_child(self):
        spans = self._tree() + [
            _record("small", "s" * 16, "r" * 16, 80, 5)
        ]
        summary = summarize(spans)
        assert [name for name, _ in summary.critical_path] == [
            "root", "mid", "leaf"
        ]

    def test_root_is_largest_parentless_span(self):
        spans = self._tree() + [
            _record("other_root", "o" * 16, "gone" + "x" * 12, 0, 30)
        ]
        summary = summarize(spans)
        assert summary.root["span"] == "root"

    def test_parallel_children_clamp_self_time(self):
        spans = [
            _record("root", "r" * 16, None, 0, 100),
            _record("a", "a" * 16, "r" * 16, 0, 80),
            _record("b", "b" * 16, "r" * 16, 0, 80),
        ]
        summary = summarize(spans)
        self_by_name = {row[0]: row[3] for row in summary.phases}
        assert self_by_name["root"] == 0  # clamped, not negative

    def test_child_coverage(self):
        spans = self._tree()
        assert child_coverage(spans, spans[0]) == pytest.approx(0.6)
        assert child_coverage(spans, spans[1]) == pytest.approx(40 / 60)

    def test_empty_input(self):
        summary = summarize([])
        assert summary.span_count == 0
        assert "no spans" in format_summary(summary)

    def test_format_summary_mentions_phases_and_path(self):
        text = format_summary(summarize(self._tree()))
        assert "per-phase self time" in text
        assert "critical path" in text
        assert "root" in text and "leaf" in text
