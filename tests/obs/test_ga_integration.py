"""Integration: the GA, analysis and CLI emit consistent telemetry."""

import json

import pytest

from repro.cli import main
from repro.dse.ga import Explorer, ExplorerConfig
from repro.model.serialization import save_system
from repro.obs.events import (
    EarlyStopped,
    FaultInjected,
    GenerationCompleted,
    capture,
)
from repro.obs.metrics import metrics


def small_config(**overrides):
    defaults = dict(
        population_size=10,
        offspring_size=10,
        archive_size=10,
        generations=3,
        seed=7,
    )
    defaults.update(overrides)
    return ExplorerConfig(**defaults)


@pytest.fixture(scope="module")
def cruise_problem():
    from repro.suites import get_benchmark

    return get_benchmark("cruise").problem


class TestGenerationEvents:
    def test_one_event_per_generation_on_cruise(self, cruise_problem):
        config = ExplorerConfig(
            population_size=8,
            offspring_size=8,
            archive_size=8,
            generations=3,
            seed=1,
        )
        with capture(GenerationCompleted) as collected:
            result = Explorer(cruise_problem, config).run()
        events = collected.of_type(GenerationCompleted)
        # Generations 0..generations_run, one event each, in order.
        assert [e.generation for e in events] == list(
            range(result.generations_run + 1)
        )
        last = events[-1]
        stats = result.statistics
        assert last.evaluations == stats.evaluations
        assert last.cache_hits == stats.cache_hits
        assert last.cache_hit_rate == pytest.approx(stats.cache_hit_rate)
        assert last.repair_failures == stats.repair_failures
        assert all(e.wall_seconds >= 0.0 for e in events)
        assert all(e.archive_size >= e.feasible_in_archive for e in events)

    def test_sched_counters_advance(self, problem):
        registry = metrics()
        registry.reset()
        Explorer(problem, small_config()).run()
        snap = registry.snapshot()
        assert snap["counters"]["sched.invocations"] > 0
        assert snap["counters"]["analysis.runs"] > 0
        assert snap["counters"]["dse.evaluations"] > 0
        assert (
            snap["histograms"]["sched.sweeps"]["count"]
            == snap["counters"]["sched.invocations"]
        )

    def test_cache_hit_rate_consistent_with_counters(self, problem):
        registry = metrics()
        registry.reset()
        result = Explorer(problem, small_config()).run()
        snap = registry.snapshot()
        stats = result.statistics
        assert snap["counters"]["dse.evaluations"] == stats.evaluations
        assert snap["counters"]["dse.cache_hits"] == stats.cache_hits
        expected = stats.cache_hits / (stats.cache_hits + stats.evaluations)
        assert stats.cache_hit_rate == pytest.approx(expected)


class TestEarlyStop:
    def test_early_stop_event_and_statistics(self, problem):
        config = small_config(generations=50, stagnation_limit=2)
        with capture(EarlyStopped) as collected:
            result = Explorer(problem, config).run()
        assert result.generations_run < 50
        stats = result.statistics
        assert stats.stopped_early is True
        assert stats.stopping_generation == result.generations_run
        stops = collected.of_type(EarlyStopped)
        assert len(stops) == 1
        assert stops[0].generation == result.generations_run
        assert stops[0].stagnation == 2

    def test_full_run_not_marked_early(self, problem):
        result = Explorer(problem, small_config(generations=2)).run()
        assert result.statistics.stopped_early is False
        assert result.statistics.stopping_generation is None


class TestSimulatorEvents:
    def test_fault_injection_events(self, hardened, architecture, mapping):
        import random

        from repro.sim import Simulator, WorstCaseSampler
        from repro.sim.faults import random_profile

        simulator = Simulator(hardened, architecture, mapping)
        profile = random_profile(hardened, random.Random(3), max_faults=2)
        with capture(FaultInjected) as collected:
            result = simulator.run(profile=profile, sampler=WorstCaseSampler())
        assert len(collected.of_type(FaultInjected)) == result.faults_observed


class TestCliMetricsReport:
    def test_explore_metrics_out(self, tmp_path, apps, architecture, capsys):
        system = tmp_path / "system.json"
        save_system(system, apps, architecture)
        report = tmp_path / "metrics.json"
        code = main(
            [
                "explore",
                str(system),
                "--generations",
                "3",
                "--population",
                "10",
                "--seed",
                "5",
                "--metrics-out",
                str(report),
            ]
        )
        assert code in (0, 1)
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["command"] == "explore"
        generations = payload["generations"]
        assert generations, "expected per-generation records"
        assert [g["event"] for g in generations] == [
            "generation-complete"
        ] * len(generations)
        assert [g["generation"] for g in generations] == list(
            range(len(generations))
        )
        counters = payload["metrics"]["counters"]
        assert counters["sched.invocations"] > 0
        assert counters["dse.evaluations"] > 0
