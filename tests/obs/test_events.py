import io
import json
import threading

import pytest

from repro.errors import ReproError
from repro.obs.events import (
    EVENT_TYPES,
    ArchiveUpdated,
    BackendFellBack,
    CheckpointWritten,
    DeadlineMissed,
    EarlyStopped,
    EvaluationCompleted,
    EvaluationFailed,
    EventBus,
    FaultInjected,
    GenerationCompleted,
    InMemoryCollector,
    IslandEpochCompleted,
    JsonlTraceWriter,
    MigrationCompleted,
    ProgressLogger,
    RunInterrupted,
    RunResumed,
    ScenarioAnalyzed,
    VerificationCompleted,
    ViolationFound,
    capture,
    event_from_dict,
    event_to_dict,
)


def _generation_event(generation=1, **overrides):
    payload = dict(
        generation=generation,
        archive_size=10,
        feasible_in_archive=4,
        best_power=12.5,
        hypervolume=3.25,
        evaluations=40,
        cache_hits=10,
        cache_hit_rate=0.2,
        repair_failures=0,
        wall_seconds=0.125,
    )
    payload.update(overrides)
    return GenerationCompleted(**payload)


SAMPLE_EVENTS = [
    _generation_event(),
    ArchiveUpdated(generation=1, size=10, feasible=4, improved=True),
    EvaluationCompleted(
        feasible=True, power=9.0, service=5.0, violations=0, seconds=0.01
    ),
    ScenarioAnalyzed(trigger="t1", granularity="task", sweeps=6),
    FaultInjected(time=12.0, task="a", instance=0, attempt=1),
    DeadlineMissed(graph="hi", instance=2, response=40.0, deadline=30.0),
    EarlyStopped(generation=8, stagnation=5, best_power=11.0),
    EvaluationFailed(
        stage="evaluate",
        error_type="ValueError",
        error="boom",
        attempts=2,
        fallback_used=True,
        quarantined=True,
    ),
    BackendFellBack(reason="error", error_type="ValueError", seconds=0.5),
    CheckpointWritten(
        generation=10, path="ckpt/checkpoint-00000010.json",
        size_bytes=2048, seconds=0.01,
    ),
    RunResumed(
        generation=10, path="ckpt/checkpoint-00000010.json", cache_entries=64
    ),
    RunInterrupted(generation=11, checkpoint_path=None),
    IslandEpochCompleted(island=1, barrier=10, execution="process", seconds=2.5),
    MigrationCompleted(barrier=10, islands=4, migrants=6, topology="ring"),
    ViolationFound(
        oracle="sim-le-proposed",
        subject="hi",
        expected=30.0,
        actual=31.5,
        scenario="directed-boundary-1",
    ),
    VerificationCompleted(
        label="cruise", scenarios=200, checks=210, violations=1,
        shrink_steps=5, reproducers=1,
    ),
]


class TestBus:
    def test_subscribe_receives_only_that_type(self):
        bus = EventBus()
        collector = InMemoryCollector()
        bus.subscribe(GenerationCompleted, collector)
        bus.publish(_generation_event())
        bus.publish(EarlyStopped(generation=1, stagnation=1, best_power=None))
        assert len(collector.events) == 1
        assert isinstance(collector.events[0], GenerationCompleted)

    def test_subscribe_all_receives_everything(self):
        bus = EventBus()
        collector = InMemoryCollector()
        bus.subscribe_all(collector)
        for event in SAMPLE_EVENTS:
            bus.publish(event)
        assert collector.events == SAMPLE_EVENTS

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        collector = InMemoryCollector()
        bus.subscribe(GenerationCompleted, collector)
        bus.subscribe_all(collector)
        bus.unsubscribe(collector)
        bus.unsubscribe(collector)  # second detach must not raise
        bus.publish(_generation_event())
        assert collector.events == []

    def test_wants_guards_hot_paths(self):
        bus = EventBus()
        assert not bus.wants(GenerationCompleted)
        handler = bus.subscribe(GenerationCompleted, lambda e: None)
        assert bus.wants(GenerationCompleted)
        assert not bus.wants(EarlyStopped)
        bus.unsubscribe(handler)
        assert not bus.wants(GenerationCompleted)
        bus.subscribe_all(lambda e: None)
        assert bus.wants(EarlyStopped)

    def test_clear_drops_everything(self):
        bus = EventBus()
        collector = InMemoryCollector()
        bus.subscribe_all(collector)
        bus.clear()
        bus.publish(_generation_event())
        assert collector.events == []

    def test_subscribe_rejects_non_event_types(self):
        bus = EventBus()
        with pytest.raises(ReproError):
            bus.subscribe(int, lambda e: None)

    def test_handlers_called_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(EarlyStopped, lambda e: order.append("first"))
        bus.subscribe(EarlyStopped, lambda e: order.append("second"))
        bus.publish(EarlyStopped(generation=0, stagnation=1, best_power=None))
        assert order == ["first", "second"]

    def test_capture_context_manager(self):
        bus = EventBus()
        with capture(EarlyStopped, on=bus) as collected:
            bus.publish(EarlyStopped(generation=3, stagnation=2, best_power=None))
            bus.publish(_generation_event())
        # Detached after the block.
        bus.publish(EarlyStopped(generation=4, stagnation=2, best_power=None))
        stops = collected.of_type(EarlyStopped)
        assert [e.generation for e in stops] == [3]
        assert collected.of_type(GenerationCompleted) == []


class TestSerialization:
    @pytest.mark.parametrize(
        "event", SAMPLE_EVENTS, ids=[e.kind for e in SAMPLE_EVENTS]
    )
    def test_round_trip_every_kind(self, event):
        payload = event_to_dict(event)
        assert payload["event"] == event.kind
        # The payload must be plain JSON.
        restored = event_from_dict(json.loads(json.dumps(payload)))
        assert restored == event

    def test_catalogue_covers_sample(self):
        assert {e.kind for e in SAMPLE_EVENTS} == set(EVENT_TYPES)

    def test_missing_kind_rejected(self):
        with pytest.raises(ReproError):
            event_from_dict({"generation": 1})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            event_from_dict({"event": "no-such-kind"})

    def test_unknown_field_rejected(self):
        payload = event_to_dict(EarlyStopped(generation=1, stagnation=1, best_power=None))
        payload["bogus"] = 1
        with pytest.raises(ReproError):
            event_from_dict(payload)


class TestJsonlTraceWriter:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        with JsonlTraceWriter(path) as writer:
            bus.subscribe_all(writer)
            for event in SAMPLE_EVENTS:
                bus.publish(event)
        restored = [
            event_from_dict(json.loads(line))
            for line in path.read_text().splitlines()
        ]
        assert restored == SAMPLE_EVENTS

    def test_close_is_idempotent(self, tmp_path):
        writer = JsonlTraceWriter(tmp_path / "trace.jsonl")
        writer.close()
        writer.close()

    def test_write_record_after_close_is_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = JsonlTraceWriter(path)
        writer.close()
        writer.write_record({"span": "late"})
        assert path.read_text() == ""

    def test_concurrent_hammer_produces_valid_unmixed_jsonl(self, tmp_path):
        """N threads writing events and span records concurrently must
        yield one valid JSON object per line, never interleaved."""
        path = tmp_path / "trace.jsonl"
        threads_n, per_thread = 8, 100
        writer = JsonlTraceWriter(path)
        barrier = threading.Barrier(threads_n)

        def hammer(worker):
            barrier.wait()
            for i in range(per_thread):
                if i % 2:
                    writer(_generation_event(generation=i))
                else:
                    writer.write_record(
                        {
                            "span": "w",
                            "attrs": {"worker": worker, "i": i,
                                      "pad": "x" * 200},
                        }
                    )

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        writer.close()

        lines = path.read_text().splitlines()
        assert len(lines) == threads_n * per_thread
        records = [json.loads(line) for line in lines]  # raises if mixed
        spans = [r for r in records if "span" in r]
        events = [r for r in records if "event" in r]
        assert len(spans) == threads_n * per_thread // 2
        assert len(events) == threads_n * per_thread // 2
        # Every span record arrived intact, not spliced with another.
        seen = {(r["attrs"]["worker"], r["attrs"]["i"]) for r in spans}
        assert len(seen) == len(spans)


class TestProgressLogger:
    def test_generation_line(self):
        stream = io.StringIO()
        logger = ProgressLogger(stream=stream)
        logger(_generation_event(generation=7))
        line = stream.getvalue()
        assert "[gen    7]" in line
        assert "best_power=12.500" in line
        assert "cache_hit_rate=0.20" in line

    def test_early_stop_line_and_none_power(self):
        stream = io.StringIO()
        logger = ProgressLogger(stream=stream)
        logger(EarlyStopped(generation=9, stagnation=5, best_power=None))
        line = stream.getvalue()
        assert "early stop" in line
        assert "best_power=-" in line

    def test_ignores_unrelated_events(self):
        stream = io.StringIO()
        ProgressLogger(stream=stream)(
            ScenarioAnalyzed(trigger="t", granularity="job", sweeps=1)
        )
        assert stream.getvalue() == ""

    def test_attach_subscribes_to_both_kinds(self):
        stream = io.StringIO()
        bus = EventBus()
        ProgressLogger(stream=stream).attach(bus)
        assert bus.wants(GenerationCompleted)
        assert bus.wants(EarlyStopped)
