"""Tracer core: no-op path, nesting, propagation, traceparent syntax."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.trace import (
    RESPONSE_TRACE_HEADER,
    TRACEPARENT_HEADER,
    SpanContext,
    activate,
    annotate,
    capture_context,
    current_context,
    from_traceparent,
    span,
    to_traceparent,
    tracer,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    tracer().reset()
    yield
    tracer().reset()


@pytest.fixture
def sink():
    records = []
    tracer().enable(records.append)
    return records


class TestDisabledPath:
    def test_span_is_shared_noop_object(self):
        first = span("a")
        second = span("b", key=1)
        assert first is second  # one shared instance, nothing allocated

    def test_noop_span_accepts_attributes(self):
        with span("a") as sp:
            sp.set_attribute("k", 1)
            sp.set_attributes(x=2, y=3)

    def test_no_context_while_disabled(self):
        assert current_context() is None
        assert capture_context() is None

    def test_annotate_is_noop(self):
        annotate(anything="goes")

    def test_activate_returns_null_activation(self):
        ctx = SpanContext("ab" * 16, "cd" * 8)
        with activate(ctx):
            assert current_context() is None


class TestSpanRecords:
    def test_record_schema(self, sink):
        with span("phase.one", widgets=3):
            pass
        assert len(sink) == 1
        record = sink[0]
        assert record["span"] == "phase.one"
        assert len(record["trace_id"]) == 32
        assert len(record["span_id"]) == 16
        assert record["parent_id"] is None
        assert record["duration_us"] >= 0
        assert record["attrs"] == {"widgets": 3}
        assert record["thread"] == threading.current_thread().name

    def test_nested_spans_share_trace_and_link_parents(self, sink):
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = sink  # children finish first
        assert inner["span"] == "inner"
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_siblings_get_distinct_span_ids(self, sink):
        with span("outer"):
            with span("a"):
                pass
            with span("b"):
                pass
        a, b, _outer = sink
        assert a["span_id"] != b["span_id"]
        assert a["parent_id"] == b["parent_id"]

    def test_exception_sets_error_attr_and_unwinds(self, sink):
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("nope")
        assert sink[0]["attrs"]["error"] == "ValueError"
        assert tracer().current_span() is None

    def test_annotate_enriches_innermost_span(self, sink):
        with span("outer"):
            with span("inner"):
                annotate(cache_hit=True)
        inner, outer = sink
        assert inner["attrs"] == {"cache_hit": True}
        assert outer["attrs"] == {}

    def test_set_attributes_after_creation(self, sink):
        with span("s") as sp:
            sp.set_attribute("a", 1)
            sp.set_attributes(b=2)
        assert sink[0]["attrs"] == {"a": 1, "b": 2}


class TestPropagation:
    def test_capture_and_activate_across_threads(self, sink):
        with span("parent"):
            ctx = capture_context()

            def work():
                with activate(ctx):
                    with span("child"):
                        pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        child = next(r for r in sink if r["span"] == "child")
        parent = next(r for r in sink if r["span"] == "parent")
        assert child["trace_id"] == parent["trace_id"]
        assert child["parent_id"] == parent["span_id"]

    def test_activation_reroots_over_live_infrastructure_spans(self, sink):
        """Request work on a pool worker must join the request's trace,
        not nest under the worker's own open spans."""
        request_ctx = SpanContext("11" * 16, "22" * 8)
        with span("worker.infra"):
            with activate(request_ctx):
                with span("request.work"):
                    pass
            with span("infra.child"):
                pass
        work = next(r for r in sink if r["span"] == "request.work")
        infra_child = next(r for r in sink if r["span"] == "infra.child")
        infra = next(r for r in sink if r["span"] == "worker.infra")
        assert work["trace_id"] == request_ctx.trace_id
        assert work["parent_id"] == request_ctx.span_id
        # After the activation exits, the worker's own stack is restored.
        assert infra_child["parent_id"] == infra["span_id"]

    def test_executor_fanout_parents_all_tasks_on_submitter(self, sink):
        with span("batch"):
            ctx = capture_context()

            def work(i):
                with activate(ctx):
                    with span("item", index=i):
                        pass

            with ThreadPoolExecutor(max_workers=3) as pool:
                list(pool.map(work, range(6)))
        batch = next(r for r in sink if r["span"] == "batch")
        items = [r for r in sink if r["span"] == "item"]
        assert len(items) == 6
        assert {r["parent_id"] for r in items} == {batch["span_id"]}
        assert {r["trace_id"] for r in items} == {batch["trace_id"]}

    def test_context_roundtrip_through_dict(self):
        ctx = SpanContext("aa" * 16, "bb" * 8)
        restored = SpanContext.from_dict(ctx.to_dict())
        assert restored.trace_id == ctx.trace_id
        assert restored.span_id == ctx.span_id

    def test_context_from_junk_is_none(self):
        assert SpanContext.from_dict(None) is None
        assert SpanContext.from_dict("garbage") is None
        assert SpanContext.from_dict({}) is None
        assert SpanContext.from_dict({"trace_id": "x"}) is None


class TestTraceparent:
    def test_roundtrip(self):
        ctx = SpanContext("ab" * 16, "cd" * 8)
        header = to_traceparent(ctx)
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        parsed = from_traceparent(header)
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    def test_none_in_none_out(self):
        assert to_traceparent(None) is None
        assert from_traceparent(None) is None
        assert from_traceparent("") is None

    @pytest.mark.parametrize(
        "header",
        [
            "junk",
            "00-short-abcdefabcdefabcd-01",
            "00-" + "g" * 32 + "-" + "ab" * 8 + "-01",  # not hex
            "00-" + "0" * 32 + "-" + "ab" * 8 + "-01",  # zero trace id
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # zero span id
        ],
    )
    def test_malformed_headers_rejected(self, header):
        assert from_traceparent(header) is None

    def test_header_names(self):
        assert TRACEPARENT_HEADER == "traceparent"
        assert RESPONSE_TRACE_HEADER == "X-Repro-Trace"


class TestTracerLifecycle:
    def test_sink_added_once(self):
        records = []
        tracer().add_sink(records.append)
        tracer().add_sink(records.append)
        tracer().enable()
        with span("s"):
            pass
        assert len(records) == 1

    def test_remove_sink(self):
        records = []
        tracer().enable(records.append)
        tracer().remove_sink(records.append)
        with span("s"):
            pass
        assert records == []

    def test_reset_disables_and_clears_state(self):
        records = []
        tracer().enable(records.append)
        with span("s"):
            tracer().reset()
        # The open span still exits cleanly; nothing is recorded.
        assert records == []
        assert not tracer().enabled
        assert current_context() is None
