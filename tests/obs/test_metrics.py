import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    metrics,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("c").inc(-1)

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("c") is registry.counter("c")


class TestGauge:
    def test_last_write_wins(self, registry):
        gauge = registry.gauge("g")
        gauge.set(3.0)
        gauge.set(-1.5)
        assert gauge.value == -1.5


class TestTimer:
    def test_observe_aggregates(self, registry):
        timer = registry.timer("t")
        timer.observe(2.0)
        timer.observe(4.0)
        assert timer.count == 2
        assert timer.total == pytest.approx(6.0)
        assert timer.mean == pytest.approx(3.0)
        assert timer.min == pytest.approx(2.0)
        assert timer.max == pytest.approx(4.0)

    def test_empty_timer_mean_is_zero(self, registry):
        assert registry.timer("t").mean == 0.0

    def test_time_context_records_one_observation(self, registry):
        timer = registry.timer("t")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0


class TestHistogram:
    def test_values_land_in_first_bucket_with_room(self, registry):
        histogram = registry.histogram("h", buckets=(1, 5, 10))
        for value in (0.5, 1.0, 3.0, 10.0, 11.0):
            histogram.observe(value)
        # upper bounds are inclusive: 0.5 and 1.0 -> bucket 1; 3.0 -> 5;
        # 10.0 -> 10; 11.0 overflows.
        assert histogram.counts == [2, 1, 1]
        assert histogram.overflow == 1
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(25.5 / 5)
        assert histogram.min == 0.5
        assert histogram.max == 11.0

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=())

    def test_duplicate_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(1, 1, 2))


class TestRegistry:
    def test_type_mismatch_raises(self, registry):
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_disabled_records_are_noops(self, registry):
        counter = registry.counter("c")
        timer = registry.timer("t")
        histogram = registry.histogram("h")
        gauge = registry.gauge("g")
        registry.disable()
        counter.inc()
        gauge.set(7.0)
        timer.observe(1.0)
        with timer.time():
            pass
        histogram.observe(1.0)
        assert counter.value == 0
        assert gauge.value == 0.0
        assert timer.count == 0
        assert histogram.count == 0
        registry.enable()
        counter.inc()
        assert counter.value == 1

    def test_reset_frees_names(self, registry):
        registry.counter("x").inc()
        registry.reset()
        # After reset the name may be re-registered with another type.
        gauge = registry.gauge("x")
        assert gauge.value == 0.0

    def test_snapshot_shape(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.timer("t").observe(0.25)
        registry.histogram("h", buckets=(1, 2)).observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["timers"]["t"]["count"] == 1
        assert snap["timers"]["t"]["total"] == pytest.approx(0.25)
        assert snap["histograms"]["h"]["counts"] == [1, 0]

    def test_global_registry_is_singleton(self):
        assert metrics() is metrics()


class TestExport:
    def test_jsonl_round_trip(self, registry, tmp_path):
        registry.counter("c").inc(3)
        registry.timer("t").observe(1.0)
        path = tmp_path / "metrics.jsonl"
        registry.write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {entry["name"]: entry for entry in lines}
        assert by_name["c"]["type"] == "counter"
        assert by_name["c"]["value"] == 3
        assert by_name["t"]["type"] == "timer"
        assert by_name["t"]["count"] == 1

    def test_write_json_merges_extra(self, registry, tmp_path):
        registry.counter("c").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(path, extra={"command": "explore"})
        payload = json.loads(path.read_text())
        assert payload["command"] == "explore"
        assert payload["metrics"]["counters"]["c"] == 1


class TestStreamingQuantiles:
    def test_empty_histogram_has_none_quantiles(self, registry):
        quantiles = registry.histogram("h").quantiles()
        assert quantiles == {"p50": None, "p95": None, "p99": None}

    def test_exact_below_five_samples(self, registry):
        histogram = registry.histogram("h", buckets=(100,))
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.quantiles()["p50"] == pytest.approx(2.0)

    def test_median_of_uniform_stream(self, registry):
        histogram = registry.histogram("h", buckets=(2000,))
        for i in range(1, 1001):
            histogram.observe(float(i))
        quantiles = histogram.quantiles()
        assert quantiles["p50"] == pytest.approx(500.0, rel=0.05)
        assert quantiles["p95"] == pytest.approx(950.0, rel=0.05)
        assert quantiles["p99"] == pytest.approx(990.0, rel=0.05)

    def test_quantiles_ordered(self, registry):
        import random

        rng = random.Random(7)
        histogram = registry.histogram("h", buckets=(10,))
        for _ in range(500):
            histogram.observe(rng.expovariate(1.0))
        quantiles = histogram.quantiles()
        assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]

    def test_as_dict_and_snapshot_carry_quantiles(self, registry):
        histogram = registry.histogram("h")
        for i in range(20):
            histogram.observe(float(i))
        payload = histogram.as_dict()
        assert "p50" in payload and "p95" in payload and "p99" in payload
        snap = registry.snapshot()["histograms"]["h"]
        assert snap["p50"] == payload["p50"]

    def test_disabled_registry_records_nothing(self):
        quiet = MetricsRegistry(enabled=False)
        histogram = quiet.histogram("h")
        histogram.observe(5.0)
        assert histogram.quantiles()["p50"] is None


class TestPrometheusExposition:
    def test_counter_gauge_timer_lines(self, registry):
        registry.counter("dse.evaluations").inc(4)
        registry.gauge("serve.queue_depth").set(2)
        registry.timer("serve.latency.analyze").observe(0.25)
        lines = list(registry.prometheus_lines())
        assert "# TYPE repro_dse_evaluations_total counter" in lines
        assert "repro_dse_evaluations_total 4" in lines
        assert "repro_serve_queue_depth 2" in lines
        assert "repro_serve_latency_analyze_sum 0.25" in lines
        assert "repro_serve_latency_analyze_count 1" in lines

    def test_histogram_buckets_are_cumulative(self, registry):
        histogram = registry.histogram("lat", buckets=(1, 5, 10))
        for value in (0.5, 0.7, 3.0, 20.0):
            histogram.observe(value)
        lines = list(registry.prometheus_lines())
        assert 'repro_lat_bucket{le="1"} 2' in lines
        assert 'repro_lat_bucket{le="5"} 3' in lines
        assert 'repro_lat_bucket{le="10"} 3' in lines
        assert 'repro_lat_bucket{le="+Inf"} 4' in lines
        assert "repro_lat_count 4" in lines

    def test_names_sanitized(self, registry):
        registry.counter("a.b-c d").inc()
        lines = list(registry.prometheus_lines())
        assert "repro_a_b_c_d_total 1" in lines
