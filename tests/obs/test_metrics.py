import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    metrics,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("c").inc(-1)

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("c") is registry.counter("c")


class TestGauge:
    def test_last_write_wins(self, registry):
        gauge = registry.gauge("g")
        gauge.set(3.0)
        gauge.set(-1.5)
        assert gauge.value == -1.5


class TestTimer:
    def test_observe_aggregates(self, registry):
        timer = registry.timer("t")
        timer.observe(2.0)
        timer.observe(4.0)
        assert timer.count == 2
        assert timer.total == pytest.approx(6.0)
        assert timer.mean == pytest.approx(3.0)
        assert timer.min == pytest.approx(2.0)
        assert timer.max == pytest.approx(4.0)

    def test_empty_timer_mean_is_zero(self, registry):
        assert registry.timer("t").mean == 0.0

    def test_time_context_records_one_observation(self, registry):
        timer = registry.timer("t")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0


class TestHistogram:
    def test_values_land_in_first_bucket_with_room(self, registry):
        histogram = registry.histogram("h", buckets=(1, 5, 10))
        for value in (0.5, 1.0, 3.0, 10.0, 11.0):
            histogram.observe(value)
        # upper bounds are inclusive: 0.5 and 1.0 -> bucket 1; 3.0 -> 5;
        # 10.0 -> 10; 11.0 overflows.
        assert histogram.counts == [2, 1, 1]
        assert histogram.overflow == 1
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(25.5 / 5)
        assert histogram.min == 0.5
        assert histogram.max == 11.0

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=())

    def test_duplicate_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(1, 1, 2))


class TestRegistry:
    def test_type_mismatch_raises(self, registry):
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_disabled_records_are_noops(self, registry):
        counter = registry.counter("c")
        timer = registry.timer("t")
        histogram = registry.histogram("h")
        gauge = registry.gauge("g")
        registry.disable()
        counter.inc()
        gauge.set(7.0)
        timer.observe(1.0)
        with timer.time():
            pass
        histogram.observe(1.0)
        assert counter.value == 0
        assert gauge.value == 0.0
        assert timer.count == 0
        assert histogram.count == 0
        registry.enable()
        counter.inc()
        assert counter.value == 1

    def test_reset_frees_names(self, registry):
        registry.counter("x").inc()
        registry.reset()
        # After reset the name may be re-registered with another type.
        gauge = registry.gauge("x")
        assert gauge.value == 0.0

    def test_snapshot_shape(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.timer("t").observe(0.25)
        registry.histogram("h", buckets=(1, 2)).observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["timers"]["t"]["count"] == 1
        assert snap["timers"]["t"]["total"] == pytest.approx(0.25)
        assert snap["histograms"]["h"]["counts"] == [1, 0]

    def test_global_registry_is_singleton(self):
        assert metrics() is metrics()


class TestExport:
    def test_jsonl_round_trip(self, registry, tmp_path):
        registry.counter("c").inc(3)
        registry.timer("t").observe(1.0)
        path = tmp_path / "metrics.jsonl"
        registry.write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {entry["name"]: entry for entry in lines}
        assert by_name["c"]["type"] == "counter"
        assert by_name["c"]["value"] == 3
        assert by_name["t"]["type"] == "timer"
        assert by_name["t"]["count"] == 1

    def test_write_json_merges_extra(self, registry, tmp_path):
        registry.counter("c").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(path, extra={"command": "explore"})
        payload = json.loads(path.read_text())
        assert payload["command"] == "explore"
        assert payload["metrics"]["counters"]["c"] == 1
