"""Integration: explore runs produce one coherent span tree.

The structural guarantees under test:

* a run is a single trace rooted at ``dse.run`` regardless of how the
  Explorer is driven;
* serial and ``workers=N`` runs produce the *same tree shape* for the
  structural skeleton (parent links survive the executor hand-off);
* the trace context rides checkpoints, so a resumed run records where
  it came from.
"""

import pytest

from repro.dse.ga import Explorer, ExplorerConfig
from repro.obs.trace import tracer

#: The structural skeleton compared across serial/parallel runs.  Spans
#: below the memoized analysis layer (``analysis.transition``,
#: ``sched.*``) are excluded: evaluation *order* differs between serial
#: and threaded runs, so cache hit/miss placement may differ even though
#: every reported number is identical.
SKELETON = {
    "dse.run",
    "ga.generation",
    "ga.evaluate_batch",
    "eval.guarded",
    "analysis.run",
}


@pytest.fixture(autouse=True)
def _clean_tracer():
    tracer().reset()
    yield
    tracer().reset()


def _config(**overrides):
    defaults = dict(
        population_size=8,
        offspring_size=8,
        archive_size=8,
        generations=2,
        seed=11,
    )
    defaults.update(overrides)
    return ExplorerConfig(**defaults)


def _run_traced(problem, **overrides):
    records = []
    tracer().reset()
    tracer().enable(records.append)
    result = Explorer(problem, _config(**overrides)).run()
    tracer().reset()
    return records, result


def _shape(records):
    """Sorted multiset of root-to-span name paths over the skeleton."""
    by_id = {r["span_id"]: r for r in records}
    paths = []
    for record in records:
        if record["span"] not in SKELETON:
            continue
        path = [record["span"]]
        parent = record.get("parent_id")
        while parent in by_id:
            path.append(by_id[parent]["span"])
            parent = by_id[parent].get("parent_id")
        paths.append(tuple(reversed(path)))
    return sorted(paths)


class TestSingleTree:
    def test_run_is_one_trace_rooted_at_dse_run(self, problem):
        records, _result = _run_traced(problem)
        assert len({r["trace_id"] for r in records}) == 1
        roots = [r for r in records if r["parent_id"] is None]
        assert [r["span"] for r in roots] == ["dse.run"]

    def test_generations_parent_on_dse_run(self, problem):
        records, result = _run_traced(problem)
        root = next(r for r in records if r["span"] == "dse.run")
        generations = [r for r in records if r["span"] == "ga.generation"]
        assert len(generations) == result.generations_run + 1
        assert {r["parent_id"] for r in generations} == {root["span_id"]}

    def test_child_self_times_cover_root(self, problem):
        from repro.obs.export import child_coverage

        # Longer run so the uninstrumented setup (initial population
        # construction) amortizes; the 90% bound is the acceptance bar
        # for realistic workloads.
        records, _result = _run_traced(problem, generations=6)
        root = next(r for r in records if r["span"] == "dse.run")
        assert child_coverage(records, root) >= 0.9

    def test_deep_attribution_present(self, problem):
        records, _result = _run_traced(problem)
        names = {r["span"] for r in records}
        assert "analysis.transition" in names
        assert "eval.guarded" in names
        transition_attrs = [
            r["attrs"] for r in records if r["span"] == "analysis.transition"
        ]
        assert any("cache_hit" in attrs for attrs in transition_attrs)


class TestParallelShape:
    def test_serial_and_threaded_trees_have_same_shape(self, problem):
        serial, serial_result = _run_traced(problem, workers=1)
        threaded, threaded_result = _run_traced(problem, workers=3)
        assert serial_result.statistics.evaluations == (
            threaded_result.statistics.evaluations
        )
        assert _shape(serial) == _shape(threaded)

    def test_threaded_run_spans_cross_threads_but_one_trace(self, problem):
        records, _result = _run_traced(problem, workers=3)
        assert len({r["trace_id"] for r in records}) == 1
        evaluations = [r for r in records if r["span"] == "eval.guarded"]
        assert len({r["thread"] for r in evaluations}) > 1
        batches = {
            r["span_id"] for r in records if r["span"] == "ga.evaluate_batch"
        }
        assert {r["parent_id"] for r in evaluations} <= batches


class TestCheckpointContinuity:
    def test_snapshot_carries_trace_context(self, problem, tmp_path):
        records, _result = _run_traced(
            problem,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
        )
        from repro.dse.checkpoint import CheckpointManager, problem_digest

        manager = CheckpointManager(str(tmp_path), problem_digest(problem))
        snapshot, _path = manager.load_latest()
        root = next(r for r in records if r["span"] == "dse.run")
        assert snapshot.trace is not None
        assert snapshot.trace["trace_id"] == root["trace_id"]
        assert snapshot.trace["span_id"] == root["span_id"]

    def test_resumed_run_records_original_trace_id(self, problem, tmp_path):
        first, _result = _run_traced(
            problem,
            generations=2,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
        )
        original = next(r for r in first if r["span"] == "dse.run")
        resumed, _result = _run_traced(
            problem,
            generations=4,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=10,
            resume=True,
        )
        root = next(r for r in resumed if r["span"] == "dse.run")
        assert root["attrs"]["resumed_trace_id"] == original["trace_id"]

    def test_untraced_runs_store_no_context(self, problem, tmp_path):
        Explorer(
            problem,
            _config(checkpoint_dir=str(tmp_path), checkpoint_every=1),
        ).run()
        from repro.dse.checkpoint import CheckpointManager, problem_digest

        manager = CheckpointManager(str(tmp_path), problem_digest(problem))
        snapshot, _path = manager.load_latest()
        assert snapshot.trace is None
