import io
import logging

import pytest

from repro.errors import ReproError
from repro.obs.logging import configure, get_logger, kv, level_from_name


class TestHierarchy:
    def test_root_and_children(self):
        root = get_logger()
        child = get_logger("dse")
        assert root.name == "repro"
        assert child.name == "repro.dse"
        assert child.parent is root

    def test_same_name_same_logger(self):
        assert get_logger("cli") is get_logger("cli")


class TestLevels:
    def test_known_levels(self):
        assert level_from_name("debug") == logging.DEBUG
        assert level_from_name("INFO") == logging.INFO
        assert level_from_name("warning") == logging.WARNING
        assert level_from_name("error") == logging.ERROR

    def test_unknown_level_rejected(self):
        with pytest.raises(ReproError):
            level_from_name("loud")


class TestConfigure:
    def test_installs_exactly_one_handler(self):
        root = configure("info")
        before = len(root.handlers)
        configure("debug")
        configure("warning")
        assert len(root.handlers) == before
        assert root.level == logging.WARNING
        assert root.propagate is False

    def test_repeated_configure_rebinds_stream(self):
        first = io.StringIO()
        second = io.StringIO()
        configure("info", stream=first)
        get_logger("t").info("one")
        configure("info", stream=second)
        get_logger("t").info("two")
        assert "one" in first.getvalue()
        assert "two" not in first.getvalue()
        assert "two" in second.getvalue()

    def test_format_contains_level_and_logger(self):
        stream = io.StringIO()
        configure("info", stream=stream)
        get_logger("dse").info("hello %s", kv(gen=3))
        line = stream.getvalue()
        assert "INFO" in line
        assert "repro.dse" in line
        assert "hello gen=3" in line


class TestKv:
    def test_sorted_keys(self):
        assert kv(b=2, a=1) == "a=1 b=2"

    def test_float_formatting(self):
        assert kv(x=0.123456789) == "x=0.123457"
        assert kv(x=1.0) == "x=1"

    def test_mixed_types(self):
        assert kv(name="cruise", n=3, ok=True) == "n=3 name=cruise ok=True"

    def test_empty(self):
        assert kv() == ""
