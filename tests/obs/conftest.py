import pytest

from repro.obs.events import bus
from repro.obs.metrics import metrics


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Keep the process-wide registry and bus isolated between tests."""
    metrics().reset()
    metrics().enable()
    yield
    metrics().reset()
    metrics().enable()
    bus().clear()
