"""Every front door builds the same ``ExploreRequest``.

The API redesign's core claim: CLI flag vectors, HTTP payloads, and
``api`` keyword calls all funnel through ``ExplorerConfig.from_options``
into one typed request — so equivalent spellings are *provably* the same
exploration (equal configs, equal canonical options, equal digests).
"""

import warnings

import pytest

from repro.cli import _explore_request_from_args, build_parser
from repro.dse import ExploreRequest, ExplorerConfig, IslandTopology
from repro.errors import ReproError
from repro.serve.encoding import (
    explore_request_from_params,
    parse_explore_request,
    request_digest,
)


def _cli_request(argv):
    args = build_parser().parse_args(argv)
    return _explore_request_from_args(args)


class TestFrontDoorParity:
    def test_cli_flags_equal_from_options(self):
        via_cli = _cli_request(
            [
                "explore", "cruise",
                "--generations", "7", "--population", "16", "--seed", "9",
                "--workers", "2", "--islands", "4",
                "--migration-every", "5", "--migrants", "3",
                "--topology", "all", "--backend", "window",
            ]
        )
        direct = ExploreRequest.from_options(
            "cruise",
            generations=7, population=16, seed=9, workers=2,
            islands=4, migration_every=5, migrants=3, topology="all",
            backend="window",
        )
        assert via_cli == direct

    def test_http_payload_equals_from_options(self):
        params = parse_explore_request(
            {
                "system": "cruise",
                "generations": 7,
                "population": 16,
                "seed": 9,
                "workers": 2,
                "islands": 4,
                "migration_every": 5,
                "migrants": 3,
                "topology": "all",
                "backend": "window",
            }
        )
        via_http = explore_request_from_params(params)
        direct = ExploreRequest.from_options(
            "cruise",
            generations=7, population=16, seed=9, workers=2,
            islands=4, migration_every=5, migrants=3, topology="all",
            backend="window", checkpoint_every=2,
        )
        # The HTTP layer inlines the system payload; compare the rest.
        assert via_http.config == direct.config
        assert via_http.topology == direct.topology
        assert via_http.backend == direct.backend
        assert via_http.canonical_options() == direct.canonical_options()

    def test_cli_defaults_equal_http_defaults(self):
        via_cli = _cli_request(
            ["explore", "cruise", "--checkpoint-every", "2"]
        )
        params = parse_explore_request({"system": "cruise"})
        via_http = explore_request_from_params(params)
        assert via_cli.config == via_http.config
        assert via_cli.topology == via_http.topology
        assert via_cli.backend == via_http.backend

    def test_api_shim_warns_and_matches_request_path(self):
        import repro.api as api

        with warnings.catch_warnings(record=True) as log:
            warnings.simplefilter("always")
            shimmed = api.explore(
                "cruise", generations=2, population=8, seed=1
            )
        assert any(
            issubclass(entry.category, DeprecationWarning) for entry in log
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the request path is clean
            direct = api.explore(
                ExploreRequest.from_options(
                    "cruise", generations=2, population=8, seed=1
                )
            )
        assert [
            (p.power, p.service, p.dropped) for p in shimmed.pareto
        ] == [(p.power, p.service, p.dropped) for p in direct.pareto]


class TestCanonicalization:
    def test_equivalent_spellings_digest_identically(self):
        sparse = parse_explore_request({"system": "cruise"})
        explicit = parse_explore_request(
            {
                "system": "cruise",
                "generations": 25,
                "population": 32,
                "offspring_size": 32,
                "archive_size": 32,
                "seed": 0,
                "workers": 1,
                "islands": 1,
                "migration_every": 99,   # meaningless with one island
                "migrants": 7,           # ditto
                "topology": "all",       # ditto
                "backend": None,         # same as "fast"
            }
        )
        assert sparse == explicit
        assert request_digest("explore", sparse) == request_digest(
            "explore", explicit
        )

    def test_non_migrating_topologies_normalize(self):
        zero_migrants = parse_explore_request(
            {"system": "cruise", "islands": 4, "migrants": 0}
        )
        none_kind = parse_explore_request(
            {
                "system": "cruise",
                "islands": 4,
                "topology": "none",
                "migration_every": 3,
            }
        )
        assert zero_migrants["topology"] == "none"
        assert zero_migrants == none_kind

    def test_canonical_options_is_the_wire_body(self):
        request = ExploreRequest.from_options(
            "cruise", generations=5, population=8, islands=2,
            checkpoint_every=2,
        )
        body = dict(request.canonical_options())
        body["system"] = "cruise"
        round_tripped = explore_request_from_params(
            parse_explore_request(body)
        )
        assert round_tripped.config == request.config
        assert round_tripped.topology == request.topology.normalized()
        assert round_tripped.backend == (request.backend or "fast")


class TestConstructionPath:
    def test_from_options_round_trips_full_field_names(self):
        config = ExplorerConfig.from_options(
            population=20, generations=9, seed=4, workers=2,
            mutation_gene_rate=0.2,
        )
        from dataclasses import asdict

        assert ExplorerConfig.from_options(**asdict(config)) == config

    def test_shorthand_expands_the_size_triple(self):
        config = ExplorerConfig.from_options(population=24)
        assert (
            config.population_size,
            config.offspring_size,
            config.archive_size,
        ) == (24, 24, 24)

    def test_explicit_sizes_override_population(self):
        config = ExplorerConfig.from_options(
            population=24, archive_size=8
        )
        assert config.population_size == 24
        assert config.archive_size == 8

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ReproError):
            ExplorerConfig.from_options(resume=True)

    def test_checkpointing_defaults_quarantine_path(self, tmp_path):
        config = ExplorerConfig.from_options(
            checkpoint_dir=str(tmp_path / "ckpt")
        )
        assert config.quarantine_path is not None
        assert config.quarantine_path.endswith("quarantine.jsonl")

    def test_bad_topology_rejected(self):
        with pytest.raises(ReproError):
            IslandTopology(islands=0)
        with pytest.raises(ReproError):
            IslandTopology(kind="mesh")
        with pytest.raises(ReproError):
            ExploreRequest.from_options("cruise", backend="bogus")
