"""The ``flat`` backend is byte-identical to the legacy comm model.

Acceptance gate of the comm subsystem: on every built-in suite, the
Proposed analysis produces the exact same result digest whether the comm
model is left to default, selected as the ``flat`` backend by name, or
built by hand as the legacy :class:`CommModel` — any drift means the
reference oracle broke.
"""

import json

import pytest

from repro.core.factory import make_analysis
from repro.model.serialization import SystemBundle
from repro.sched.comm import CommModel
from repro.suites import benchmark_names, get_benchmark
from repro.verify.campaign import state_from_bundle
from repro.verify.oracles import result_digest


def _digest(state, comm):
    result = make_analysis(comm=comm).analyze(
        state.hardened(), state.architecture, state.mapping, state.dropped
    )
    return json.dumps(result_digest(result), sort_keys=True)


def test_five_suites_registered():
    assert len(benchmark_names()) >= 5


@pytest.mark.parametrize("suite", benchmark_names())
def test_flat_backend_byte_identical(suite):
    problem = get_benchmark(suite).problem
    bundle = SystemBundle(
        applications=problem.applications,
        architecture=problem.architecture,
        mapping=None,
        plan=None,
    )
    state = state_from_bundle(bundle, seed=0)
    reference = _digest(state, None)
    assert _digest(state, "flat") == reference
    assert _digest(state, CommModel(state.architecture.interconnect)) == (
        reference
    )
