"""Comm configuration must participate in job-set fingerprints.

The :class:`~repro.sched.cache.ScheduleCache` keys on
``JobSet.fingerprint()``; if two systems differing only in their comm
backend collided, a cached contended schedule could answer a flat query
(or vice versa).
"""

from repro.comm import make_comm
from repro.model.mapping import Mapping
from repro.sched.jobs import unroll


def _cross_mapping(apps):
    names = sorted(apps.all_task_names)
    return Mapping(
        {name: f"pe{i % 2}" for i, name in enumerate(names)}
    )


class TestFingerprint:
    def test_flat_backend_keeps_the_legacy_fingerprint(self, apps, architecture):
        mapping = _cross_mapping(apps)
        legacy = unroll(apps, mapping, architecture)
        explicit = unroll(
            apps, mapping, architecture, comm=make_comm("flat")
        )
        assert explicit.comm_token == ""
        assert explicit.fingerprint() == legacy.fingerprint()

    def test_backend_only_difference_changes_the_fingerprint(
        self, apps, architecture
    ):
        mapping = _cross_mapping(apps)
        fingerprints = {
            name: unroll(
                apps, mapping, architecture, comm=make_comm(name)
            ).fingerprint()
            for name in ("flat", "shared-bus", "tdma", "noc-xy")
        }
        assert len(set(fingerprints.values())) == 4

    def test_arq_budget_changes_the_fingerprint(self, apps, architecture):
        mapping = _cross_mapping(apps)
        one = unroll(
            apps, mapping, architecture, comm=make_comm("flat", arq_retries=1)
        )
        two = unroll(
            apps, mapping, architecture, comm=make_comm("flat", arq_retries=2)
        )
        assert one.comm_token != ""
        assert one.fingerprint() != two.fingerprint()

    def test_token_survives_with_bounds_clone(self, apps, architecture):
        mapping = _cross_mapping(apps)
        jobset = unroll(
            apps, mapping, architecture, comm=make_comm("tdma")
        )
        clone = jobset.with_bounds({("a", 0): (0.0, 9.0)})
        assert clone.comm_token == jobset.comm_token
