"""Bound semantics of the four communication backends."""

import pytest

from repro.comm import make_comm
from repro.comm.base import busy_period_worst
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture, Interconnect, Processor
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.sched.comm import CommModel


def _system(fabric=None, processors=2):
    graph = TaskGraph(
        "g",
        tasks=[Task("a", 1.0, 2.0), Task("b", 1.0, 2.0)],
        channels=[Channel("a", "b", 200.0)],
        period=20.0,
        reliability_target=1e-6,
    )
    apps = ApplicationSet([graph])
    arch = Architecture(
        [Processor(f"pe{i}") for i in range(processors)],
        fabric or Interconnect(bandwidth=100.0, base_latency=1.0),
    )
    mapping = Mapping({"a": "pe0", "b": "pe1"})
    return apps, mapping, arch


def _bind(name, fabric=None, **arq):
    apps, mapping, arch = _system(fabric)
    return make_comm(name, **arq).bind(apps, mapping, arch)


class TestFlatBackend:
    def test_no_arq_binds_to_the_legacy_model(self):
        bound = _bind("flat")
        assert type(bound) is CommModel

    def test_arq_folds_into_worst_only(self):
        bound = _bind("flat", arq_retries=2, arq_timeout=0.5)
        best, worst = bound.channel_bounds("a", "b", 200.0, False)
        # One attempt costs base + size/bw = 3.0; k=2 lost attempts add
        # two more sends and two timeouts.
        assert best == pytest.approx(3.0)
        assert worst == pytest.approx(3 * 3.0 + 2 * 0.5)

    def test_same_processor_is_free(self):
        bound = _bind("flat", arq_retries=2, arq_timeout=0.5)
        assert bound.channel_bounds("a", "b", 200.0, True) == (0.0, 0.0)

    def test_without_arq_strips_the_margin(self):
        bound = _bind("flat", arq_retries=2, arq_timeout=0.5).without_arq()
        _, worst = bound.channel_bounds("a", "b", 200.0, False)
        assert worst == pytest.approx(3.0)

    def test_zero_size_keeps_the_pinned_asymmetry(self):
        bound = _bind("flat", arq_retries=1)
        best, worst = bound.channel_bounds("a", "b", 0.0, False)
        assert best == 0.0
        # One arbitration round per attempt, two attempts in the fold.
        assert worst == pytest.approx(2.0)


class TestSharedBus:
    def test_single_channel_collapses_to_flat(self):
        bound = _bind("shared-bus")
        _, worst = bound.channel_bounds("a", "b", 200.0, False)
        assert worst == pytest.approx(3.0)

    def test_competing_channels_interfere(self):
        graph_a = TaskGraph(
            "ga",
            tasks=[Task("a", 1.0, 2.0), Task("b", 1.0, 2.0)],
            channels=[Channel("a", "b", 200.0)],
            period=20.0,
            reliability_target=1e-6,
        )
        graph_b = TaskGraph(
            "gb",
            tasks=[Task("x", 1.0, 2.0), Task("y", 1.0, 2.0)],
            channels=[Channel("x", "y", 100.0)],
            period=10.0,
            service_value=1.0,
        )
        apps = ApplicationSet([graph_a, graph_b])
        arch = Architecture(
            [Processor("pe0"), Processor("pe1")],
            Interconnect(bandwidth=100.0, base_latency=1.0),
        )
        mapping = Mapping({"a": "pe0", "b": "pe1", "x": "pe0", "y": "pe1"})
        bound = make_comm("shared-bus").bind(apps, mapping, arch)
        # x>y (period 10) wins arbitration but suffers one blocking
        # transfer from a>b already in flight: 2.0 + 3.0.
        assert bound.attempt_worst("x", "y", 100.0) == pytest.approx(5.0)
        # a>b additionally suffers one x>y release in its busy period.
        assert bound.attempt_worst("a", "b", 200.0) == pytest.approx(5.0)

    def test_unknown_channel_falls_back_to_uncontended(self):
        bound = _bind("shared-bus")
        assert bound.attempt_worst("ghost", "b", 100.0) == pytest.approx(2.0)


class TestBusyPeriod:
    def test_no_competitors(self):
        assert busy_period_worst(3.0, 2.0, [], 100.0) == pytest.approx(5.0)

    def test_convergent_fixed_point(self):
        worst = busy_period_worst(3.0, 0.0, [(2.0, 10.0)], 20.0)
        assert worst == pytest.approx(5.0)

    def test_overload_saturates_finitely(self):
        # Utilization > 1: the recurrence diverges; the census fallback
        # must stay finite and scale with the hyperperiod cap, not with
        # the diverged iterate.
        worst = busy_period_worst(1.0, 0.0, [(5.0, 1.0)], 10.0)
        assert worst == pytest.approx(1.0 + (10 + 1) * 5.0)

    def test_overload_bound_dominates_own_cost(self):
        worst = busy_period_worst(1.0, 2.0, [(5.0, 1.0), (3.0, 2.0)], 10.0)
        assert worst >= 3.0
        assert worst < 1e6


class TestTdma:
    def test_slot_alignment_worst_case(self):
        bound = _bind("tdma")
        # Derived slot: L = base + 64/bw = 1.64, payload/slot = 164 B,
        # 200 B needs 2 slots; S = 2 slots per revolution.
        _, worst = bound.channel_bounds("a", "b", 200.0, False)
        assert worst == pytest.approx(1.0 + 2 * 2 * 1.64)

    def test_explicit_slot_table(self):
        fabric = Interconnect(
            bandwidth=100.0,
            base_latency=1.0,
            comm_backend="tdma",
            slot_length=2.0,
            slot_count=4,
        )
        bound = _bind("tdma", fabric=fabric)
        # payload/slot = 200 B: one slot, one full revolution of 4 slots.
        _, worst = bound.channel_bounds("a", "b", 200.0, False)
        assert worst == pytest.approx(1.0 + 1 * 4 * 2.0)

    def test_zero_size_occupies_one_slot(self):
        bound = _bind("tdma")
        _, worst = bound.channel_bounds("a", "b", 0.0, False)
        assert worst == pytest.approx(1.0 + 1 * 2 * 1.64)


class TestNocXY:
    def test_single_hop_route(self):
        bound = _bind("noc-xy")
        # Two PEs on a 2-wide mesh: one hop, hop latency falls back to
        # base latency, no competing channels.
        _, worst = bound.channel_bounds("a", "b", 200.0, False)
        assert worst == pytest.approx(1.0 + 1 * 1.0 + 2.0)

    def test_longer_routes_cost_more_hops(self):
        fabric = Interconnect(
            bandwidth=100.0,
            base_latency=1.0,
            comm_backend="noc-xy",
            mesh_columns=4,
            hop_latency=0.25,
        )
        apps, _, _ = _system()
        arch = Architecture(
            [Processor(f"pe{i}") for i in range(4)], fabric
        )
        mapping = Mapping({"a": "pe0", "b": "pe3"})
        bound = make_comm("noc-xy").bind(apps, mapping, arch)
        # pe0 -> pe3 on a 1x4 row: three X hops.
        _, worst = bound.channel_bounds("a", "b", 200.0, False)
        assert worst == pytest.approx(1.0 + 3 * 0.25 + 2.0)


class TestLattice:
    @pytest.mark.parametrize("name", ("shared-bus", "tdma", "noc-xy"))
    def test_contended_dominates_flat(self, name):
        # The bound tables are computed for the channel's declared
        # payload (200 B), so domination is asserted at that size.
        flat = _bind("flat", arq_retries=0)
        contended = _bind(name)
        size = 200.0
        best, worst = contended.channel_bounds("a", "b", size, False)
        assert best == pytest.approx(flat.best_case(size, False))
        assert worst >= flat.worst_case(size, False) - 1e-9

    @pytest.mark.parametrize("name", ("flat", "shared-bus", "tdma", "noc-xy"))
    def test_arq_fold_is_monotone(self, name):
        previous = None
        for retries in range(1, 4):
            bound = _bind(name, arq_retries=retries, arq_timeout=0.5)
            _, worst = bound.channel_bounds("a", "b", 200.0, False)
            if previous is not None:
                assert worst >= previous - 1e-9
            previous = worst

    @pytest.mark.parametrize("name", ("shared-bus", "tdma", "noc-xy"))
    def test_fingerprint_tokens_differ(self, name):
        flat = _bind("flat", arq_retries=1)
        contended = _bind(name, arq_retries=1)
        assert flat.fingerprint_token != contended.fingerprint_token

    def test_arq_changes_the_token(self):
        assert (
            _bind("tdma", arq_retries=1).fingerprint_token
            != _bind("tdma", arq_retries=2).fingerprint_token
        )
