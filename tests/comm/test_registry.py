"""Registry, factory and override plumbing of :mod:`repro.comm`."""

import pytest

from repro.comm import (
    COMM_BACKENDS,
    CommBackend,
    default_comm,
    make_comm,
    register_backend,
    resolve_comm,
    with_comm,
)
from repro.errors import AnalysisError
from repro.model.architecture import Architecture, Interconnect, Processor
from repro.sched.comm import CommModel


def _arch(**fabric):
    options = dict(bandwidth=100.0, base_latency=1.0)
    options.update(fabric)
    return Architecture(
        [Processor("pe0"), Processor("pe1")], Interconnect(**options)
    )


class TestRegistry:
    def test_all_backends_registered(self):
        assert COMM_BACKENDS == ("flat", "shared-bus", "tdma", "noc-xy")

    def test_make_comm_by_name(self):
        for name in COMM_BACKENDS:
            backend = make_comm(name)
            assert isinstance(backend, CommBackend)
            assert backend.name == name

    def test_unknown_name_lists_every_backend(self):
        with pytest.raises(AnalysisError) as error:
            make_comm("token-ring")
        text = str(error.value)
        assert "token-ring" in text
        for name in COMM_BACKENDS:
            assert name in text

    def test_nameless_backend_rejected(self):
        class Anonymous(CommBackend):
            name = ""

        with pytest.raises(AnalysisError):
            register_backend(Anonymous)

    def test_deferred_backend_resolves_at_bind_time(self):
        backend = make_comm(None, arq_retries=1)
        assert backend.name == "auto"


class TestDefaultComm:
    def test_flat_without_arq_is_the_legacy_model(self):
        comm = default_comm(_arch())
        assert type(comm) is CommModel

    def test_contended_fabric_returns_a_backend(self):
        comm = default_comm(_arch(comm_backend="tdma"))
        assert isinstance(comm, CommBackend)
        assert comm.name == "tdma"

    def test_flat_with_arq_returns_a_backend(self):
        comm = default_comm(_arch(arq_retries=2))
        assert isinstance(comm, CommBackend)
        assert comm.name == "flat"

    def test_resolve_comm_passthrough_and_name(self):
        arch = _arch()
        model = CommModel(arch.interconnect)
        assert resolve_comm(model, arch) is model
        assert resolve_comm("noc-xy", arch).name == "noc-xy"
        assert type(resolve_comm(None, arch)) is CommModel
        assert resolve_comm(None, arch, arq_retries=1).name == "flat"


class TestWithComm:
    def test_rewrites_only_comm_fields(self):
        arch = _arch(mesh_columns=3, slot_count=5)
        rewritten = with_comm(arch, backend="noc-xy", arq_retries=2)
        fabric = rewritten.interconnect
        assert fabric.comm_backend == "noc-xy"
        assert fabric.arq_retries == 2
        assert fabric.bandwidth == arch.interconnect.bandwidth
        assert fabric.mesh_columns == 3
        assert fabric.slot_count == 5
        assert rewritten.processor_names == arch.processor_names

    def test_none_leaves_fields_untouched(self):
        arch = _arch(comm_backend="tdma", arq_retries=1, arq_timeout=0.5)
        rewritten = with_comm(arch)
        assert rewritten.interconnect == arch.interconnect

    def test_unknown_backend_rejected_with_listing(self):
        with pytest.raises(AnalysisError) as error:
            with_comm(_arch(), backend="token-ring")
        for name in COMM_BACKENDS:
            assert name in str(error.value)
